/**
 * @file
 * Trace-format tests: writer/reader round trips, header validation, and
 * replay equivalence against the emulator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "trace/trace.hh"

namespace pubs::trace
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

DynInst
sample(SeqNum seq)
{
    DynInst di;
    di.seq = seq;
    di.pc = 0x1000 + seq * 4;
    di.nextPc = di.pc + 4;
    di.op = isa::Opcode::Ld;
    di.dst = 3;
    di.src1 = 5;
    di.src2 = invalidReg;
    di.effAddr = 0xdead0000 + seq;
    di.memSize = 8;
    di.taken = (seq & 1) != 0;
    return di;
}

TEST(Trace, RoundTrip)
{
    std::string path = tempPath("pubs_trace_rt.trc");
    {
        TraceWriter writer(path);
        for (SeqNum i = 0; i < 100; ++i)
            writer.write(sample(i));
        writer.close();
        EXPECT_EQ(writer.recordsWritten(), 100u);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 100u);
    DynInst di;
    for (SeqNum i = 0; i < 100; ++i) {
        ASSERT_TRUE(reader.next(di));
        DynInst want = sample(i);
        EXPECT_EQ(di.pc, want.pc);
        EXPECT_EQ(di.nextPc, want.nextPc);
        EXPECT_EQ(di.op, want.op);
        EXPECT_EQ(di.dst, want.dst);
        EXPECT_EQ(di.src1, want.src1);
        EXPECT_EQ(di.src2, want.src2);
        EXPECT_EQ(di.effAddr, want.effAddr);
        EXPECT_EQ(di.memSize, want.memSize);
        EXPECT_EQ(di.taken, want.taken);
    }
    EXPECT_FALSE(reader.next(di));
    std::remove(path.c_str());
}

TEST(Trace, NegativeRegistersSurvive)
{
    std::string path = tempPath("pubs_trace_neg.trc");
    {
        TraceWriter writer(path);
        DynInst di = sample(0);
        di.dst = invalidReg;
        di.src1 = invalidReg;
        writer.write(di);
        writer.close();
    }
    TraceReader reader(path);
    DynInst di;
    ASSERT_TRUE(reader.next(di));
    EXPECT_EQ(di.dst, invalidReg);
    EXPECT_EQ(di.src1, invalidReg);
    std::remove(path.c_str());
}

TEST(Trace, EmptyTrace)
{
    std::string path = tempPath("pubs_trace_empty.trc");
    {
        TraceWriter writer(path);
        writer.close();
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.recordCount(), 0u);
    DynInst di;
    EXPECT_FALSE(reader.next(di));
    std::remove(path.c_str());
}

TEST(Trace, CapturedEmulationReplaysIdentically)
{
    isa::Program prog = isa::assemble(R"(
        li r1, 0
        li r2, 20
    loop:
        addi r1, r1, 1
        blt r1, r2, loop
        halt
    )");
    std::string path = tempPath("pubs_trace_emul.trc");
    {
        emu::Emulator emu(prog);
        TraceWriter writer(path);
        DynInst di;
        while (emu.step(di))
            writer.write(di);
        writer.close();
    }
    emu::Emulator emu(prog);
    TraceReader reader(path);
    EXPECT_EQ(reader.program(), nullptr); // traces carry no static code
    DynInst fromEmu, fromTrace;
    while (emu.step(fromEmu)) {
        ASSERT_TRUE(reader.next(fromTrace));
        EXPECT_EQ(fromEmu.pc, fromTrace.pc);
        EXPECT_EQ(fromEmu.nextPc, fromTrace.nextPc);
        EXPECT_EQ((int)fromEmu.op, (int)fromTrace.op);
        EXPECT_EQ(fromEmu.taken, fromTrace.taken);
    }
    EXPECT_FALSE(reader.next(fromTrace));
    std::remove(path.c_str());
}

TEST(VectorSourceTest, DrainsInOrder)
{
    std::vector<DynInst> insts = {sample(0), sample(1), sample(2)};
    VectorSource source(insts);
    DynInst di;
    for (SeqNum i = 0; i < 3; ++i) {
        ASSERT_TRUE(source.next(di));
        EXPECT_EQ(di.seq, i);
    }
    EXPECT_FALSE(source.next(di));
}

} // namespace
} // namespace pubs::trace
