/**
 * @file
 * Functional-emulator tests: instruction semantics, sparse memory,
 * control flow, and end-to-end mini programs.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"

namespace pubs::emu
{
namespace
{

using isa::Opcode;
using isa::ProgramBuilder;
using trace::DynInst;

/** Run @p source to halt (bounded) and return the emulator. */
std::unique_ptr<Emulator>
runAsm(const std::string &source, uint64_t maxSteps = 100000)
{
    static std::vector<std::unique_ptr<isa::Program>> keepAlive;
    keepAlive.push_back(
        std::make_unique<isa::Program>(isa::assemble(source)));
    auto emu = std::make_unique<Emulator>(*keepAlive.back());
    DynInst di;
    uint64_t steps = 0;
    while (emu->step(di)) {
        if (++steps > maxSteps)
            ADD_FAILURE() << "program did not halt";
        if (steps > maxSteps)
            break;
    }
    return emu;
}

TEST(SparseMemory, ByteAndWordAccess)
{
    SparseMemory mem;
    EXPECT_EQ(mem.readByte(0x1234), 0); // untouched memory reads zero
    mem.writeByte(0x1234, 0xab);
    EXPECT_EQ(mem.readByte(0x1234), 0xab);
    mem.write64(0x2000, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(0x2000), 0x1122334455667788ull);
    EXPECT_EQ(mem.read(0x2000, 4), 0x55667788u);
}

TEST(SparseMemory, PageCrossing)
{
    SparseMemory mem;
    Addr addr = SparseMemory::pageBytes - 3;
    mem.write64(addr, 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read64(addr), 0xdeadbeefcafebabeull);
    EXPECT_GE(mem.pagesAllocated(), 2u);
}

TEST(SparseMemory, Doubles)
{
    SparseMemory mem;
    mem.writeF64(0x3000, 3.14159);
    EXPECT_DOUBLE_EQ(mem.readF64(0x3000), 3.14159);
}

TEST(Emulator, ArithmeticSemantics)
{
    auto emu = runAsm(R"(
        li r1, 12
        li r2, 5
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        div r6, r1, r2
        rem r7, r1, r2
        and r8, r1, r2
        or  r9, r1, r2
        xor r10, r1, r2
        slt r11, r2, r1
        halt
    )");
    EXPECT_EQ(emu->intReg(3), 17);
    EXPECT_EQ(emu->intReg(4), 7);
    EXPECT_EQ(emu->intReg(5), 60);
    EXPECT_EQ(emu->intReg(6), 2);
    EXPECT_EQ(emu->intReg(7), 2);
    EXPECT_EQ(emu->intReg(8), 4);
    EXPECT_EQ(emu->intReg(9), 13);
    EXPECT_EQ(emu->intReg(10), 9);
    EXPECT_EQ(emu->intReg(11), 1);
}

TEST(Emulator, ImmediateAndShiftSemantics)
{
    auto emu = runAsm(R"(
        li r1, -8
        addi r2, r1, 3
        slli r3, r1, 2
        srai r4, r1, 1
        li r5, 8
        srli r6, r5, 2
        slti r7, r1, 0
        halt
    )");
    EXPECT_EQ(emu->intReg(2), -5);
    EXPECT_EQ(emu->intReg(3), -32);
    EXPECT_EQ(emu->intReg(4), -4);
    EXPECT_EQ(emu->intReg(6), 2);
    EXPECT_EQ(emu->intReg(7), 1);
}

TEST(Emulator, DivideByZeroIsDefined)
{
    auto emu = runAsm(R"(
        li r1, 42
        li r2, 0
        div r3, r1, r2
        rem r4, r1, r2
        halt
    )");
    EXPECT_EQ(emu->intReg(3), -1); // RISC-V-style semantics
    EXPECT_EQ(emu->intReg(4), 42);
}

TEST(Emulator, RegisterZeroIsHardwired)
{
    auto emu = runAsm(R"(
        li r0, 99
        addi r1, r0, 1
        halt
    )");
    EXPECT_EQ(emu->intReg(0), 0);
    EXPECT_EQ(emu->intReg(1), 1);
}

TEST(Emulator, MemorySemantics)
{
    auto emu = runAsm(R"(
        li r1, 0x2000
        li r2, -7
        st r2, r1, 0
        ld r3, r1, 0
        sw r2, r1, 8
        lw r4, r1, 8
        halt
    )");
    EXPECT_EQ(emu->intReg(3), -7);
    EXPECT_EQ(emu->intReg(4), -7); // lw sign-extends
}

TEST(Emulator, FpSemantics)
{
    auto emu = runAsm(R"(
        li r1, 3
        li r2, 4
        fcvt f1, r1
        fcvt f2, r2
        fadd f3, f1, f2
        fmul f4, f1, f2
        fdiv f5, f2, f1
        fclt r3, f1, f2
        ficvt r4, f4
        halt
    )");
    EXPECT_DOUBLE_EQ(emu->fpReg(3), 7.0);
    EXPECT_DOUBLE_EQ(emu->fpReg(4), 12.0);
    EXPECT_NEAR(emu->fpReg(5), 4.0 / 3.0, 1e-12);
    EXPECT_EQ(emu->intReg(3), 1);
    EXPECT_EQ(emu->intReg(4), 12);
}

TEST(Emulator, BranchDirections)
{
    auto emu = runAsm(R"(
        li r1, 1
        li r2, 2
        blt r2, r1, bad
        bge r1, r2, bad
        beq r1, r2, bad
        bne r1, r1, bad
        li r10, 1
        halt
    bad:
        li r10, 2
        halt
    )");
    EXPECT_EQ(emu->intReg(10), 1);
}

TEST(Emulator, UnsignedBranches)
{
    auto emu = runAsm(R"(
        li r1, -1        # as unsigned: max
        li r2, 1
        bltu r1, r2, bad
        bgeu r1, r2, ok
    bad:
        li r10, 2
        halt
    ok:
        li r10, 1
        halt
    )");
    EXPECT_EQ(emu->intReg(10), 1);
}

TEST(Emulator, CallAndReturn)
{
    auto emu = runAsm(R"(
        li r1, 5
        jal r31, double
        jal r31, double
        halt
    double:
        add r1, r1, r1
        jr r31
    )");
    EXPECT_EQ(emu->intReg(1), 20);
}

TEST(Emulator, LoopComputesFibonacci)
{
    auto emu = runAsm(R"(
        li r1, 0     # fib(0)
        li r2, 1     # fib(1)
        li r3, 10    # count
    loop:
        add r4, r1, r2
        add r1, r2, r0
        add r2, r4, r0
        addi r3, r3, -1
        bne r3, r0, loop
        halt
    )");
    EXPECT_EQ(emu->intReg(2), 89); // fib(11)
}

TEST(Emulator, DynInstRecordsOutcomes)
{
    isa::Program prog = isa::assemble(R"(
        li r1, 1
        beq r1, r0, skip
        ld r2, r1, 0x1fff
    skip:
        halt
    )");
    Emulator emu(prog);
    DynInst di;
    ASSERT_TRUE(emu.step(di)); // li
    EXPECT_EQ(di.op, Opcode::Li);
    EXPECT_EQ(di.nextPc, di.pc + instBytes);
    ASSERT_TRUE(emu.step(di)); // beq (not taken)
    EXPECT_TRUE(di.isCondBranch());
    EXPECT_FALSE(di.taken);
    ASSERT_TRUE(emu.step(di)); // ld
    EXPECT_EQ(di.effAddr, 0x2000u);
    EXPECT_EQ(di.memSize, 8);
    ASSERT_TRUE(emu.step(di)); // halt
    EXPECT_FALSE(emu.step(di));
    EXPECT_TRUE(emu.halted());
}

TEST(Emulator, DataInitsInstalledOnReset)
{
    ProgramBuilder b("t");
    b.li(1, 0x4000).ld(2, 1, 0).halt();
    b.data64(0x4000, 777);
    isa::Program prog = b.build();
    Emulator emu(prog);
    DynInst di;
    while (emu.step(di)) {}
    EXPECT_EQ(emu.intReg(2), 777);

    emu.reset();
    EXPECT_EQ(emu.instsRetired(), 0u);
    while (emu.step(di)) {}
    EXPECT_EQ(emu.intReg(2), 777);
}

TEST(Emulator, DeterministicAcrossRuns)
{
    isa::Program prog = isa::assemble(R"(
        li r1, 0
        li r2, 0x3000
    loop:
        addi r1, r1, 1
        st r1, r2, 0
        ld r3, r2, 0
        blt r1, r4, loop
        halt
    )");
    // r4 == 0, so the loop body runs once; just confirm two emulators
    // agree step by step.
    Emulator a(prog), bEmu(prog);
    DynInst da, db;
    while (true) {
        bool ra = a.step(da);
        bool rb = bEmu.step(db);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        EXPECT_EQ(da.pc, db.pc);
        EXPECT_EQ(da.nextPc, db.nextPc);
        EXPECT_EQ(da.effAddr, db.effAddr);
    }
}

TEST(Emulator, ExposesStaticProgram)
{
    isa::Program prog = isa::assemble("nop\nhalt\n");
    Emulator emu(prog);
    trace::InstSource &source = emu;
    EXPECT_EQ(source.program(), &prog);
}

} // namespace
} // namespace pubs::emu
