/**
 * @file
 * Property-style parameterised sweeps over module invariants: hashing,
 * tables, caches, queues, and cross-machine pipeline sanity.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "emu/emulator.hh"
#include "cpu/pipeline.hh"
#include "iq/random_queue.hh"
#include "mem/cache.hh"
#include "pubs/table.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs
{
namespace
{

// ---------- xorFold properties ----------

class XorFoldWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(XorFoldWidth, StaysWithinWidthForRandomInputs)
{
    unsigned width = GetParam();
    Rng rng(width * 977 + 1);
    for (int i = 0; i < 2000; ++i)
        ASSERT_LE(xorFold(rng.next(), width), mask(width));
}

TEST_P(XorFoldWidth, IsDeterministic)
{
    unsigned width = GetParam();
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        uint64_t v = rng.next();
        ASSERT_EQ(xorFold(v, width), xorFold(v, width));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, XorFoldWidth,
                         ::testing::Values(1u, 2u, 4u, 8u, 13u, 16u, 32u));

// ---------- hashed-table properties ----------

class TableGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(TableGeometry, FullTagsNeverFalselyHit)
{
    auto [sets, ways] = GetParam();
    pubs::KeyScheme scheme{sets, 8, /*fullTags=*/true,
                           pubs::PubsParams::pcBits};
    pubs::HashedTagTable<Pc> table(sets, ways, scheme);
    Rng rng(sets * 31 + ways);
    // Insert a bunch of PCs tagged with themselves, then verify every
    // hit returns the PC that was actually inserted.
    std::vector<Pc> pcs;
    for (int i = 0; i < 500; ++i) {
        Pc pc = (rng.next() & mask(30)) * instBytes;
        bool allocated;
        table.lookupOrAllocate(scheme.keyOf(pc), allocated) = pc;
        pcs.push_back(pc);
    }
    for (Pc pc : pcs) {
        if (Pc *hit = table.lookup(scheme.keyOf(pc))) {
            ASSERT_EQ(*hit, pc);
        }
    }
}

TEST_P(TableGeometry, OccupancyNeverExceedsCapacity)
{
    auto [sets, ways] = GetParam();
    pubs::KeyScheme scheme{sets, 8, false, pubs::PubsParams::pcBits};
    pubs::HashedTagTable<int> table(sets, ways, scheme);
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        bool allocated;
        Pc pc = (rng.next() & mask(24)) * instBytes;
        table.lookupOrAllocate(scheme.keyOf(pc), allocated) = i;
        ASSERT_LE(table.validEntries(), table.capacity());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TableGeometry,
    ::testing::Values(std::pair{16u, 1u}, std::pair{16u, 4u},
                      std::pair{256u, 2u}, std::pair{256u, 4u},
                      std::pair{1024u, 8u}));

// ---------- cache properties ----------

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, RepeatAccessAlwaysHitsUnderLru)
{
    auto [sizeKb, ways] = GetParam();
    mem::MainMemory dram(100, 8, 64);
    mem::CacheParams params;
    params.sizeBytes = sizeKb * 1024;
    params.ways = ways;
    mem::Cache cache(params, &dram);
    Rng rng(sizeKb * 7 + ways);
    // Working set half the cache size: after a warm pass everything
    // must hit regardless of access order.
    unsigned lines = (unsigned)(params.sizeBytes / params.lineBytes / 2);
    Cycle t = 0;
    bool hit;
    for (unsigned i = 0; i < lines; ++i)
        cache.access((Addr)i * 64, false, t += 3, hit);
    t += 100000; // let every in-flight fill land
    for (int i = 0; i < 3000; ++i) {
        Addr addr = (Addr)rng.below(lines) * 64;
        cache.access(addr, false, t += 3, hit);
        ASSERT_TRUE(hit);
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheGeometry,
                         ::testing::Values(std::pair{4u, 1u},
                                           std::pair{32u, 8u},
                                           std::pair{64u, 16u}));

// ---------- random-queue properties ----------

TEST(RandomQueueProperty, OccupancyInvariantUnderRandomTraffic)
{
    Rng rng(5);
    iq::RandomQueue q(32, 6, 9);
    std::vector<uint32_t> inQueue;
    uint32_t nextId = 0;
    for (int step = 0; step < 20000; ++step) {
        bool doDispatch = rng.chance(0.55) && inQueue.size() < 32;
        if (doDispatch) {
            bool priority = rng.chance(0.2) && q.canDispatch(true);
            if (priority || q.canDispatch(false)) {
                uint32_t id = nextId++;
                q.dispatch(id, id, priority);
                inQueue.push_back(id);
            }
        } else if (!inQueue.empty()) {
            size_t pick = (size_t)rng.below(inQueue.size());
            q.remove(inQueue[pick]);
            inQueue.erase(inQueue.begin() + (long)pick);
        }
        ASSERT_EQ(q.occupancy(), inQueue.size());
        // Every in-queue id appears exactly once among the slots.
        size_t found = 0;
        for (const auto &slot : q.prioritySlots())
            found += slot.valid;
        ASSERT_EQ(found, inQueue.size());
    }
}

// ---------- pipeline cross-machine properties ----------

struct MachineCase
{
    sim::Machine machine;
    const char *workload;
};

class MachineSweep : public ::testing::TestWithParam<MachineCase>
{
};

TEST_P(MachineSweep, RunsCleanlyWithSaneMetrics)
{
    const MachineCase &c = GetParam();
    wl::Workload w = wl::makeWorkload(c.workload);
    sim::RunResult r = sim::simulate(sim::makeConfig(c.machine),
                                     w.program, 15000, 50000);
    EXPECT_EQ(r.instructions, 50000u);
    EXPECT_GT(r.ipc, 0.01);
    EXPECT_LE(r.ipc, 4.0); // bounded by the 4-wide pipeline
    EXPECT_GE(r.branchMpki, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MachineSweep,
    ::testing::Values(
        MachineCase{sim::Machine::Base, "sjeng_like"},
        MachineCase{sim::Machine::Pubs, "sjeng_like"},
        MachineCase{sim::Machine::Age, "sjeng_like"},
        MachineCase{sim::Machine::PubsAge, "sjeng_like"},
        MachineCase{sim::Machine::Base, "mcf_like"},
        MachineCase{sim::Machine::Pubs, "mcf_like"},
        MachineCase{sim::Machine::Base, "libquantum_like"},
        MachineCase{sim::Machine::Pubs, "libquantum_like"},
        MachineCase{sim::Machine::PubsAge, "soplex_like"}),
    [](const auto &info) {
        std::string name = sim::machineName(info.param.machine);
        for (char &c : name)
            if (c == '+')
                c = '_';
        return name + "_" + info.param.workload;
    });

// ---------- size-class properties ----------

class SizeSweep : public ::testing::TestWithParam<cpu::SizeClass>
{
};

TEST_P(SizeSweep, AllMachinesRunAtEverySize)
{
    wl::Workload w = wl::makeWorkload("gobmk_like");
    for (auto machine : {sim::Machine::Base, sim::Machine::Pubs,
                         sim::Machine::PubsAge}) {
        cpu::CoreParams params = sim::makeConfig(machine, GetParam());
        sim::RunResult r = sim::simulate(params, w.program, 10000, 30000);
        EXPECT_GT(r.ipc, 0.0) << sim::machineName(machine);
        EXPECT_LE(r.ipc, (double)params.issueWidth);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeSweep,
    ::testing::Values(cpu::SizeClass::Small, cpu::SizeClass::Medium,
                      cpu::SizeClass::Large, cpu::SizeClass::Huge),
    [](const auto &info) {
        return std::string(cpu::sizeClassName(info.param));
    });

// ---------- priority-entry sweep ----------

class PrioritySweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PrioritySweep, PubsRunsWithAnyReasonablePartition)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    params.pubs.priorityEntries = GetParam();
    sim::RunResult r = sim::simulate(params, w.program, 10000, 40000);
    EXPECT_GT(r.ipc, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PrioritySweep,
                         ::testing::Values(1u, 2u, 4u, 6u, 8u, 12u, 16u));

// ---------- confidence-width sweep ----------

class ConfWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ConfWidthSweep, UnconfidentRateGrowsWithWidth)
{
    // Not strictly monotone per-run, but the rate at 8 bits must exceed
    // the rate at 2 bits (Fig. 11's line).
    wl::Workload w = wl::makeWorkload("gobmk_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    params.pubs.confCounterBits = GetParam();
    sim::RunResult r = sim::simulate(params, w.program, 20000, 60000);
    EXPECT_GT(r.unconfidentBranchRate, 0.0);
    EXPECT_LE(r.unconfidentBranchRate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, ConfWidthSweep,
                         ::testing::Values(2u, 4u, 6u, 8u));

TEST(ConfWidthProperty, WiderMeansMoreUnconfident)
{
    wl::Workload w = wl::makeWorkload("bzip2_like");
    auto rateAt = [&w](unsigned bits) {
        cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
        params.pubs.confCounterBits = bits;
        return sim::simulate(params, w.program, 20000, 80000)
            .unconfidentBranchRate;
    };
    EXPECT_GT(rateAt(8), rateAt(2));
}

} // namespace
} // namespace pubs
