/**
 * @file
 * Workload-suite tests: every kernel builds and emulates cleanly, data
 * initialisation is correct, and the suite's D-BP / memory-intensity
 * placement matches its declared expectations.
 */

#include <gtest/gtest.h>

#include "common/error.hh"

#include "emu/emulator.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"
#include "workloads/suite.hh"

namespace pubs::wl
{
namespace
{

TEST(Suite, NamesAreStableAndComplete)
{
    auto names = suiteNames();
    EXPECT_EQ(names.size(), 18u);
    EXPECT_NE(std::find(names.begin(), names.end(), "sjeng_like"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "mcf_like"),
              names.end());
}

TEST(Suite, UnknownNameIsFatal)
{
    EXPECT_THROW({ makeWorkload("nonexistent"); }, SimError);
}

class EveryWorkload : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EveryWorkload, EmulatesWithoutFaulting)
{
    Workload w = makeWorkload(GetParam());
    emu::Emulator emu(w.program);
    trace::DynInst di;
    for (int i = 0; i < 30000; ++i)
        ASSERT_TRUE(emu.step(di)) << "program halted unexpectedly";
}

TEST_P(EveryWorkload, IsDeterministicForAGivenSeed)
{
    Workload a = makeWorkload(GetParam(), 7);
    Workload b = makeWorkload(GetParam(), 7);
    ASSERT_EQ(a.program.size(), b.program.size());
    emu::Emulator ea(a.program), eb(b.program);
    trace::DynInst da, db;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(ea.step(da));
        ASSERT_TRUE(eb.step(db));
        ASSERT_EQ(da.pc, db.pc);
        ASSERT_EQ(da.effAddr, db.effAddr);
    }
}

TEST_P(EveryWorkload, SeedChangesTheData)
{
    Workload a = makeWorkload(GetParam(), 1);
    Workload b = makeWorkload(GetParam(), 2);
    // Same code, different data.
    EXPECT_EQ(a.program.size(), b.program.size());
    bool differs = false;
    const auto &da = a.program.dataInits();
    const auto &db = b.program.dataInits();
    ASSERT_EQ(da.size(), db.size());
    for (size_t i = 0; i < da.size() && !differs; ++i)
        differs = da[i].bytes != db[i].bytes;
    EXPECT_TRUE(differs);
}

INSTANTIATE_TEST_SUITE_P(All, EveryWorkload,
                         ::testing::ValuesIn(suiteNames()),
                         [](const auto &info) { return info.param; });

TEST(Kernels, BranchyBiasControlsTakenRate)
{
    auto measure = [](double bias) {
        BranchyParams p;
        p.takenBias = bias;
        p.elems = 1 << 10;
        isa::Program prog = branchyProgram("t", p);
        emu::Emulator emu(prog);
        trace::DynInst di;
        uint64_t taken = 0, total = 0;
        for (int i = 0; i < 60000; ++i) {
            emu.step(di);
            if (di.op == isa::Opcode::Blt) {
                ++total;
                taken += di.taken;
            }
        }
        return (double)taken / (double)total;
    };
    EXPECT_NEAR(measure(0.5), 0.5, 0.06);
    EXPECT_NEAR(measure(0.9), 0.9, 0.06);
}

TEST(Kernels, UnrolledBranchyGrowsTheStaticFootprint)
{
    BranchyParams small;
    small.elems = 1 << 10;
    BranchyParams big = small;
    big.unroll = 16;
    isa::Program a = branchyProgram("a", small);
    isa::Program bProg = branchyProgram("b", big);
    EXPECT_GT(bProg.size(), 10 * a.size());

    // The unrolled program still runs and keeps its branch bias.
    emu::Emulator emu(bProg);
    trace::DynInst di;
    uint64_t taken = 0, total = 0;
    for (int i = 0; i < 40000; ++i) {
        ASSERT_TRUE(emu.step(di));
        if (di.op == isa::Opcode::Blt) {
            ++total;
            taken += di.taken;
        }
    }
    EXPECT_NEAR((double)taken / (double)total, small.takenBias, 0.07);
}

TEST(Kernels, PointerChaseCoversTheWholeRing)
{
    PointerChaseParams p;
    p.nodes = 1 << 8;
    p.chains = 1;
    isa::Program prog = pointerChaseProgram("t", p);
    emu::Emulator emu(prog);
    trace::DynInst di;
    std::set<Addr> lines;
    for (int i = 0; i < 40000; ++i) {
        emu.step(di);
        if (di.isLoad() && di.effAddr >= 0x10000000)
            lines.insert(di.effAddr & ~(Addr)63);
    }
    EXPECT_EQ(lines.size(), 256u); // a single cycle visits every node
}

TEST(Kernels, StreamIsSequential)
{
    StreamParams p;
    p.elems = 1 << 12;
    isa::Program prog = streamProgram("t", p);
    emu::Emulator emu(prog);
    trace::DynInst di;
    Addr last = 0;
    int ascending = 0, loads = 0;
    for (int i = 0; i < 20000; ++i) {
        emu.step(di);
        if (di.op == isa::Opcode::Fld &&
            di.effAddr < 0x4000000 + (1 << 12) * 8) {
            ++loads;
            ascending += di.effAddr > last;
            last = di.effAddr;
        }
    }
    EXPECT_GT((double)ascending / loads, 0.95);
}

TEST(Kernels, ComputeHasAlmostNoMemoryTraffic)
{
    ComputeParams p;
    isa::Program prog = computeProgram("t", p);
    emu::Emulator emu(prog);
    trace::DynInst di;
    uint64_t mem = 0, total = 0;
    for (int i = 0; i < 20000; ++i) {
        emu.step(di);
        ++total;
        mem += di.isMem();
    }
    EXPECT_LT((double)mem / total, 0.05);
}

TEST(Kernels, StateMachineVisitsManyStates)
{
    StateMachineParams p;
    p.states = 64;
    isa::Program prog = stateMachineProgram("t", p);
    emu::Emulator emu(prog);
    trace::DynInst di;
    // States live in r30 loads from the transition table.
    std::set<Addr> tableAddrs;
    for (int i = 0; i < 40000; ++i) {
        emu.step(di);
        if (di.isLoad() && di.effAddr >= 0x100000 &&
            di.effAddr < 0x100000 + 64 * 16 * 8) {
            tableAddrs.insert(di.effAddr);
        }
    }
    EXPECT_GT(tableAddrs.size(), 100u); // a lively random walk
}

// Placement on the paper's two axes, measured on the base machine.
// These run real simulations and are the slowest tests in the suite.
struct PlacementCase
{
    const char *name;
    bool hardBp;
    bool memIntensive;
};

class SuitePlacement : public ::testing::TestWithParam<PlacementCase>
{
};

TEST_P(SuitePlacement, LandsInItsQuadrant)
{
    const PlacementCase &c = GetParam();
    Workload w = makeWorkload(c.name);
    EXPECT_EQ(w.expectHardBp, c.hardBp);
    sim::RunResult r = sim::simulate(
        sim::makeConfig(sim::Machine::Base), w.program, 30000, 120000);
    if (c.hardBp)
        EXPECT_GT(r.branchMpki, 3.0) << c.name;
    else
        EXPECT_LT(r.branchMpki, 3.0) << c.name;
    if (c.memIntensive)
        EXPECT_GT(r.llcMpki, 1.0) << c.name;
    else
        EXPECT_LT(r.llcMpki, 1.0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Representatives, SuitePlacement,
    ::testing::Values(PlacementCase{"sjeng_like", true, false},
                      PlacementCase{"astar_like", true, false},
                      PlacementCase{"mcf_like", true, true},
                      PlacementCase{"hmmer_like", false, false},
                      PlacementCase{"libquantum_like", false, false}),
    [](const auto &info) { return std::string(info.param.name); });

} // namespace
} // namespace pubs::wl
