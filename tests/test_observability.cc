/**
 * @file
 * Observability-layer tests: histogram bucket scaling and value-unit
 * percentiles, JSON escaping and the hierarchical StatRegistry renderer,
 * the O3PipeView pipeline trace, and the PUBS slice telemetry measured
 * against a hand-built unpredictable-branch program.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/stats.hh"
#include "cpu/telemetry.hh"
#include "isa/builder.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "trace/pipeview.hh"

namespace pubs
{
namespace
{

// --- Histogram bucket scaling / percentiles ---

TEST(Histogram, EmptyPercentileIsZero)
{
    Histogram h(8);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Histogram, WideLinearBucketsReportValueUnits)
{
    Histogram h(8, 10);
    EXPECT_EQ(h.bucketOf(0), 0u);
    EXPECT_EQ(h.bucketOf(9), 0u);
    EXPECT_EQ(h.bucketOf(10), 1u);
    EXPECT_EQ(h.bucketOf(79), 7u);
    EXPECT_EQ(h.bucketOf(80), 8u); // overflow
    EXPECT_EQ(h.bucketLow(3), 30u);

    for (uint64_t v = 0; v < 80; ++v)
        h.sample(v);
    // Percentiles are the lower bound of the containing bucket, in
    // sample value units rather than bucket indices.
    EXPECT_EQ(h.percentile(0.5), 30u);
    EXPECT_EQ(h.percentile(1.0), 70u);
    EXPECT_DOUBLE_EQ(h.mean(), 39.5);
}

TEST(Histogram, Log2Buckets)
{
    Histogram h(10, 1, BucketScale::Log2);
    EXPECT_EQ(h.bucketOf(0), 0u);
    EXPECT_EQ(h.bucketOf(1), 1u);
    EXPECT_EQ(h.bucketOf(2), 2u);
    EXPECT_EQ(h.bucketOf(3), 2u);
    EXPECT_EQ(h.bucketOf(4), 3u);
    EXPECT_EQ(h.bucketOf(1023), 10u);
    EXPECT_EQ(h.bucketOf(1024), 10u); // clamped to overflow
    EXPECT_EQ(h.bucketLow(0), 0u);
    EXPECT_EQ(h.bucketLow(1), 1u);
    EXPECT_EQ(h.bucketLow(4), 8u);

    h.sample(0);
    h.sample(5);
    h.sample(300);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 1u); // [4, 8)
    EXPECT_EQ(h.bucket(9), 1u); // [256, 512)
    EXPECT_EQ(h.percentile(1.0), 256u);
}

TEST(Histogram, AllOverflowPercentile)
{
    Histogram h(4);
    h.sample(1000);
    h.sample(2000);
    // Every sample beyond the last in-range bucket lands in overflow;
    // the percentile degrades to the overflow bucket's lower bound.
    EXPECT_EQ(h.percentile(0.5), 4u);
    EXPECT_EQ(h.samples(), 2u);
}

// --- JSON rendering ---

TEST(Json, EscapeSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(Json, NumberFormatting)
{
    EXPECT_EQ(jsonNumber(3.0), "3");
    EXPECT_EQ(jsonNumber(-42.0), "-42");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(INFINITY), "null");
}

TEST(Json, RegistryNestsDottedGroups)
{
    StatRegistry registry;
    StatGroup &run = registry.group("run");
    run.addString("workload", "hand\"built");
    run.add("seed", 7);
    registry.group("pubs").add("slice_insts", 10);
    registry.group("pubs.conf_tab").add("updates", 3);
    registry.group("pubs.telemetry").addVector("ipc", {1.0, 0.5});

    std::string json = registry.renderJson();

    // The dotted names nest as sub-objects of "pubs".
    EXPECT_NE(json.find("\"pubs\": {"), std::string::npos);
    EXPECT_NE(json.find("\"conf_tab\": {"), std::string::npos);
    EXPECT_NE(json.find("\"telemetry\": {"), std::string::npos);
    EXPECT_EQ(json.find("\"pubs.conf_tab\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"hand\\\"built\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ipc\": [1, 0.5]"), std::string::npos);

    // Structurally sound: balanced braces, never negative depth.
    int depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    // find() resolves full dotted names; group() re-finds, not duplicates.
    EXPECT_NE(registry.find("pubs.conf_tab"), nullptr);
    EXPECT_EQ(registry.find("pubs.conf_tab")->get("updates"), 3.0);
    size_t before = registry.size();
    registry.group("pubs");
    EXPECT_EQ(registry.size(), before);
}

TEST(Json, HistogramStatsInGroup)
{
    Histogram h(8, 2);
    for (uint64_t v = 0; v < 16; ++v)
        h.sample(v);
    StatGroup group("g");
    group.addHistogram("wait", h);
    EXPECT_EQ(group.get("wait_samples"), 16.0);
    EXPECT_EQ(group.get("wait_bucket_width"), 2.0);
    EXPECT_EQ(group.get("wait_p50"), 6.0);
    ASSERT_EQ(group.vectorEntries().size(), 1u);
    EXPECT_EQ(group.vectorEntries()[0].values.size(), 9u);
}

// --- Shared test program: an unpredictable data-dependent branch fed
// by an xorshift chain, so its backward slice is long and well-defined.

isa::Program
xorshiftBranchProgram(int iterations)
{
    isa::ProgramBuilder b("xorshift_branch");
    b.li(1, 123456789); // x
    b.li(2, 0);         // i
    b.li(3, iterations); // N
    b.li(7, 0);         // zero
    b.li(8, 1 << 20);   // divide chain value
    b.li(9, 1);         // divisor
    b.label("loop");
    // A 20-cycle unpipelined divide holds the ROB head while the branch
    // slice executes behind it, so the slice is still in flight when the
    // misprediction resolves and the true-slice ROB walk runs.
    b.div(8, 8, 9);
    b.slli(4, 1, 13).xor_(1, 1, 4); // x ^= x << 13
    b.srli(4, 1, 7).xor_(1, 1, 4);  // x ^= x >> 7
    b.slli(4, 1, 17).xor_(1, 1, 4); // x ^= x << 17
    b.andi(5, 1, 1);                // parity bit: the unpredictable value
    b.bne(5, 7, "skip");            // data-dependent branch
    b.addi(6, 6, 1);
    b.label("skip");
    b.addi(2, 2, 1);
    b.blt(2, 3, "loop");
    b.halt();
    return b.build();
}

// --- O3PipeView trace ---

TEST(PipeView, DeterministicAndWellFormed)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "pubs_pipeview_test";
    fs::create_directories(dir);

    isa::Program program = xorshiftBranchProgram(4000);
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);

    auto runOnce = [&](const std::string &path) -> sim::RunResult {
        sim::Simulator simulator(params, program);
        simulator.pipeline().attachPipeView(
            std::make_unique<trace::PipeViewWriter>(path));
        sim::RunResult result = simulator.run(0, 20000);
        // Detaching destroys the writer, closing the file.
        simulator.pipeline().attachPipeView(nullptr);
        return result;
    };

    std::string pathA = (dir / "a.trace").string();
    std::string pathB = (dir / "b.trace").string();
    sim::RunResult result = runOnce(pathA);
    runOnce(pathB);

    std::ifstream a(pathA), b(pathB);
    ASSERT_TRUE(a.good());
    ASSERT_TRUE(b.good());
    std::stringstream bufA, bufB;
    bufA << a.rdbuf();
    bufB << b.rdbuf();
    ASSERT_FALSE(bufA.str().empty());
    EXPECT_EQ(bufA.str(), bufB.str()); // bit-identical across runs

    // Well-formed: 7 lines per record, stages in order, retire count
    // matches committed + squashed instructions.
    uint64_t retires = 0, squashRetires = 0, fetches = 0;
    std::istringstream lines(bufA.str());
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_EQ(line.rfind("O3PipeView:", 0), 0u) << line;
        if (line.rfind("O3PipeView:fetch:", 0) == 0)
            ++fetches;
        if (line.rfind("O3PipeView:retire:", 0) == 0) {
            ++retires;
            if (line.rfind("O3PipeView:retire:0:store:0", 0) == 0)
                ++squashRetires;
        }
    }
    EXPECT_EQ(fetches, retires);
    EXPECT_EQ(retires,
              result.pipeline.committed + result.pipeline.squashed);
    // The unpredictable branch guarantees squashes appeared.
    EXPECT_GT(squashRetires, 0u);

    fs::remove_all(dir);
}

// --- PUBS slice telemetry ---

class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        params_ = sim::makeConfig(sim::Machine::Pubs);
        params_.telemetry = true;
        params_.heartbeatInterval = 5000;
        params_.heartbeatToStderr = false;
    }

    cpu::CoreParams params_;
};

TEST_F(TelemetryTest, SliceCoverageAndAccuracyBounds)
{
    isa::Program program = xorshiftBranchProgram(30000);
    sim::Simulator simulator(params_, program);
    sim::RunResult result = simulator.run(20000, 100000);

    const cpu::CoreTelemetry *t = simulator.pipeline().telemetry();
    ASSERT_NE(t, nullptr);
    const cpu::PipelineStats &s = simulator.pipeline().stats();

    // The xorshift parity branch mispredicts constantly, so true
    // backward slices were walked.
    EXPECT_GT(s.condMispredicts, 100u);
    EXPECT_GT(t->trueSliceInsts(), 0u);
    EXPECT_LE(t->trueSliceCovered(), t->trueSliceInsts());

    // Coverage: the xorshift chain feeding the branch is exactly what
    // the slice predictor is built to catch.
    EXPECT_GT(t->sliceCoverage(), 0.0);
    EXPECT_LE(t->sliceCoverage(), 1.0);
    EXPECT_GE(t->sliceAccuracy(), 0.0);
    EXPECT_LE(t->sliceAccuracy(), 1.0);
    EXPECT_LE(t->committedUnconfidentTrue(), t->committedUnconfident());

    // Host-speed measurement rode along.
    EXPECT_GT(result.simSeconds, 0.0);
    EXPECT_GT(result.kips(), 0.0);
}

TEST_F(TelemetryTest, BranchProfileFindsTheCulprit)
{
    isa::Program program = xorshiftBranchProgram(30000);
    sim::Simulator simulator(params_, program);
    simulator.run(0, 80000);

    const cpu::CoreTelemetry *t = simulator.pipeline().telemetry();
    ASSERT_NE(t, nullptr);
    ASSERT_FALSE(t->branchSites().empty());

    auto top = t->topBranchSites(10);
    ASSERT_FALSE(top.empty());
    // Sorted by misprediction count, descending.
    for (size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].second.mispredicts, top[i].second.mispredicts);
    // The hottest site is the parity branch: most mispredictions and a
    // real penalty accumulated.
    EXPECT_GT(top[0].second.mispredicts, 100u);
    EXPECT_GT(top[0].second.penaltySum, top[0].second.mispredicts);

    std::string table = t->formatBranchProfile(5);
    EXPECT_NE(table.find("mispredicts"), std::string::npos);
    EXPECT_NE(table.find("0x"), std::string::npos);
}

TEST_F(TelemetryTest, HeartbeatSamplesAndWarmupReset)
{
    isa::Program program = xorshiftBranchProgram(30000);
    sim::Simulator simulator(params_, program);
    simulator.run(30000, 60000); // warmup resets telemetry mid-run

    const cpu::CoreTelemetry *t = simulator.pipeline().telemetry();
    ASSERT_NE(t, nullptr);
    const cpu::PipelineStats &s = simulator.pipeline().stats();

    ASSERT_GT(t->heartbeats().size(), 2u);
    Cycle warmupEnd = simulator.pipeline().now() - s.cycles;
    Cycle previous = 0;
    double totalIpc = 0.0;
    for (const cpu::HeartbeatSample &sample : t->heartbeats()) {
        // Samples are post-warmup, strictly ordered, and plausible.
        EXPECT_GT(sample.cycle, warmupEnd);
        EXPECT_GT(sample.cycle, previous);
        previous = sample.cycle;
        EXPECT_GE(sample.intervalIpc, 0.0);
        EXPECT_LE(sample.intervalIpc, 4.0); // commit width bound
        EXPECT_GE(sample.intervalMpki, 0.0);
        totalIpc += sample.intervalIpc;
    }
    EXPECT_GT(totalIpc, 0.0);

    // Priority-entry occupancy was sampled every post-warmup cycle.
    EXPECT_EQ(t->priorityOccupancy().samples(), s.cycles);
}

TEST_F(TelemetryTest, RegistryCarriesTheFullPicture)
{
    isa::Program program = xorshiftBranchProgram(30000);
    sim::Simulator simulator(params_, program);
    simulator.run(10000, 60000);

    StatRegistry registry;
    simulator.pipeline().fillRegistry(registry);

    const StatGroup *pipeline = registry.find("pipeline");
    ASSERT_NE(pipeline, nullptr);
    EXPECT_GT(pipeline->get("committed"), 0.0);
    EXPECT_TRUE(pipeline->has("misspec_penalty_p50"));

    const StatGroup *iq = registry.find("iq");
    ASSERT_NE(iq, nullptr);
    EXPECT_GT(iq->get("priority_entries"), 0.0);
    EXPECT_TRUE(iq->has("wait_p90"));

    ASSERT_NE(registry.find("mem"), nullptr);
    EXPECT_GT(registry.find("mem")->get("l1i_accesses"), 0.0);

    const StatGroup *telemetry = registry.find("pubs.telemetry");
    ASSERT_NE(telemetry, nullptr);
    EXPECT_GT(telemetry->get("true_slice_insts"), 0.0);

    const StatGroup *heartbeat = registry.find("heartbeat");
    ASSERT_NE(heartbeat, nullptr);
    EXPECT_GT(heartbeat->get("samples"), 0.0);

    ASSERT_NE(registry.find("branch_profile"), nullptr);
    EXPECT_GT(registry.find("branch_profile")->get("static_branches"),
              0.0);

    // Conf-tab dynamics are internally consistent: every update is an
    // allocation, a counter movement, or a no-op at the rails.
    const StatGroup *confTab = registry.find("pubs.conf_tab");
    ASSERT_NE(confTab, nullptr);
    double updates = confTab->get("updates");
    EXPECT_GT(updates, 0.0);
    EXPECT_GE(updates, confTab->get("allocations") +
                           confTab->get("increments") +
                           confTab->get("resets") +
                           confTab->get("decrements"));
    EXPECT_GT(confTab->get("resets"), 0.0); // mispredicting workload

    // The whole registry renders to JSON without blowing up.
    std::string json = registry.renderJson();
    EXPECT_NE(json.find("\"telemetry\""), std::string::npos);
    EXPECT_NE(json.find("\"heartbeat\""), std::string::npos);
}

TEST(Telemetry, OffByDefaultAndNullWhenDisabled)
{
    isa::Program program = xorshiftBranchProgram(2000);
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    EXPECT_FALSE(params.telemetry);
    sim::Simulator simulator(params, program);
    simulator.run(0, 5000);
    EXPECT_EQ(simulator.pipeline().telemetry(), nullptr);
    EXPECT_EQ(simulator.pipeline().pipeView(), nullptr);

    // fillRegistry still produces the machine groups, just without the
    // telemetry-only ones.
    StatRegistry registry;
    simulator.pipeline().fillRegistry(registry);
    EXPECT_NE(registry.find("pipeline"), nullptr);
    EXPECT_NE(registry.find("pubs"), nullptr);
    EXPECT_EQ(registry.find("pubs.telemetry"), nullptr);
    EXPECT_EQ(registry.find("heartbeat"), nullptr);
}

} // namespace
} // namespace pubs
