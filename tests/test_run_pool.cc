/**
 * @file
 * Concurrency tests for sim::RunPool: stress submission, exception
 * containment, destruction-while-draining, work distribution, and the
 * parallelFor helper. All of these are meant to run under TSan too
 * (see the PUBS_TSAN CMake option).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/run_pool.hh"

namespace pubs::sim
{
namespace
{

TEST(RunPool, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(RunPool::hardwareThreads(), 1u);
}

TEST(RunPool, ZeroRequestsHardwareConcurrency)
{
    RunPool pool(0);
    EXPECT_EQ(pool.threads(), RunPool::hardwareThreads());
}

TEST(RunPool, StressThousandNoopTasks)
{
    RunPool pool(4);
    std::atomic<uint64_t> ran{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1000u);

    PoolStats stats = pool.stats();
    EXPECT_EQ(stats.threads, 4u);
    EXPECT_EQ(stats.tasksRun, 1000u);
    EXPECT_EQ(stats.tasksFailed, 0u);
    EXPECT_GE(stats.wallSeconds, 0.0);
    EXPECT_GE(stats.utilization(), 0.0);
    EXPECT_LE(stats.utilization(), 1.0 + 1e-9);
}

TEST(RunPool, WaitIsReusableAcrossBatches)
{
    RunPool pool(2);
    std::atomic<int> ran{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), (batch + 1) * 50);
    }
    EXPECT_EQ(pool.stats().tasksRun, 250u);
}

TEST(RunPool, ExceptionIsRecordedNotFatal)
{
    RunPool pool(2);
    std::atomic<int> survivors{0};
    pool.submit([] { throw std::runtime_error("task exploded"); });
    for (int i = 0; i < 20; ++i)
        pool.submit([&survivors] { ++survivors; });
    pool.wait(); // must not deadlock or rethrow

    EXPECT_EQ(survivors.load(), 20);
    PoolStats stats = pool.stats();
    EXPECT_EQ(stats.tasksRun, 21u);
    EXPECT_EQ(stats.tasksFailed, 1u);
    EXPECT_EQ(pool.firstError(), "task exploded");

    // The pool stays usable after a failure.
    pool.submit([&survivors] { ++survivors; });
    pool.wait();
    EXPECT_EQ(survivors.load(), 21);
}

TEST(RunPool, FirstErrorKeepsEarliestMessage)
{
    RunPool pool(1);
    pool.submit([] { throw std::runtime_error("first"); });
    pool.wait();
    pool.submit([] { throw std::runtime_error("second"); });
    pool.wait();
    EXPECT_EQ(pool.firstError(), "first");
    EXPECT_EQ(pool.stats().tasksFailed, 2u);
}

TEST(RunPool, NonStdExceptionIsContained)
{
    RunPool pool(1);
    pool.submit([] { throw 42; });
    pool.wait();
    EXPECT_EQ(pool.stats().tasksFailed, 1u);
    EXPECT_FALSE(pool.firstError().empty());
}

TEST(RunPool, DestructionDrainsPendingWork)
{
    // Destroy the pool while tasks are still queued/running; the
    // destructor must complete every one of them before joining.
    std::atomic<uint64_t> ran{0};
    {
        RunPool pool(3);
        for (int i = 0; i < 200; ++i) {
            pool.submit([&ran] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        }
        // No wait(): the destructor races with the drain.
    }
    EXPECT_EQ(ran.load(), 200u);
}

TEST(RunPool, ParallelForCoversEveryIndexOnce)
{
    RunPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(pool, hits.size(), [&hits](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(RunPool, ParallelForZeroItemsReturnsImmediately)
{
    RunPool pool(2);
    parallelFor(pool, 0, [](size_t) { FAIL() << "must not be called"; });
    EXPECT_EQ(pool.stats().tasksRun, 0u);
}

TEST(RunPool, SingleThreadRunsEverything)
{
    RunPool pool(1);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
    // One worker can never steal from itself.
    EXPECT_EQ(pool.stats().tasksStolen, 0u);
}

TEST(RunPool, BusyTimeAccumulates)
{
    RunPool pool(2);
    parallelFor(pool, 4, [](size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    });
    PoolStats stats = pool.stats();
    EXPECT_GT(stats.busySeconds, 0.0);
    EXPECT_GT(stats.wallSeconds, 0.0);
}

} // namespace
} // namespace pubs::sim
