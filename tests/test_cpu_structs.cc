/**
 * @file
 * Tests for the out-of-order bookkeeping structures: ROB, LSQ (with
 * store-to-load forwarding), register rename (with squash rollback), and
 * the function-unit pool.
 */

#include <gtest/gtest.h>

#include "cpu/fu_pool.hh"
#include "cpu/lsq.hh"
#include "cpu/rename.hh"
#include "cpu/rob.hh"

namespace pubs::cpu
{
namespace
{

TEST(RobTest, FifoOrder)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    rob.push(1);
    rob.push(2);
    rob.push(3);
    EXPECT_EQ(rob.head(), 1u);
    EXPECT_EQ(rob.tail(), 3u);
    rob.popHead();
    EXPECT_EQ(rob.head(), 2u);
    EXPECT_EQ(rob.occupancy(), 2u);
}

TEST(RobTest, WrapsAround)
{
    Rob rob(2);
    rob.push(1);
    rob.push(2);
    EXPECT_TRUE(rob.full());
    rob.popHead();
    rob.push(3);
    EXPECT_EQ(rob.head(), 2u);
    EXPECT_EQ(rob.tail(), 3u);
}

TEST(RobTest, PopTailForSquash)
{
    Rob rob(4);
    rob.push(1);
    rob.push(2);
    rob.push(3);
    rob.popTail();
    EXPECT_EQ(rob.tail(), 2u);
    rob.popTail();
    EXPECT_EQ(rob.tail(), 1u);
    EXPECT_EQ(rob.head(), 1u);
}

TEST(LsqTest, CapacityTracking)
{
    Lsq lsq(2);
    lsq.push(1, false, 0x100, 8);
    EXPECT_FALSE(lsq.full());
    lsq.push(2, true, 0x200, 8);
    EXPECT_TRUE(lsq.full());
    lsq.remove(1);
    EXPECT_EQ(lsq.occupancy(), 1u);
}

TEST(LsqTest, LoadWithNoOlderStoreIsFree)
{
    Lsq lsq(8);
    lsq.push(1, false, 0x100, 8);
    auto dep = lsq.olderStoreDependence(1, 0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::None);
}

TEST(LsqTest, LoadWaitsForPendingOverlappingStore)
{
    Lsq lsq(8);
    lsq.push(1, true, 0x100, 8);  // store, not yet executed
    lsq.push(2, false, 0x100, 8); // load, same address
    auto dep = lsq.olderStoreDependence(2, 0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::Wait);
}

TEST(LsqTest, ExactMatchForwardsAfterStoreExecutes)
{
    Lsq lsq(8);
    lsq.push(1, true, 0x100, 8);
    lsq.push(2, false, 0x100, 8);
    lsq.markDone(1, 50);
    auto dep = lsq.olderStoreDependence(2, 0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::Forward);
    EXPECT_EQ(dep.readyCycle, 50u + Lsq::forwardLatency);
}

TEST(LsqTest, NonOverlappingStoreIgnored)
{
    Lsq lsq(8);
    lsq.push(1, true, 0x200, 8);
    lsq.push(2, false, 0x100, 8);
    auto dep = lsq.olderStoreDependence(2, 0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::None);
}

TEST(LsqTest, PartialOverlapCounts)
{
    Lsq lsq(8);
    lsq.push(1, true, 0x104, 4); // bytes 0x104..0x107
    lsq.push(2, false, 0x100, 8); // bytes 0x100..0x107: overlap
    auto dep = lsq.olderStoreDependence(2, 0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::Wait);
}

TEST(LsqTest, YoungestMatchingStoreWins)
{
    Lsq lsq(8);
    lsq.push(1, true, 0x100, 8);
    lsq.push(2, true, 0x100, 8);
    lsq.push(3, false, 0x100, 8);
    lsq.markDone(1, 10);
    lsq.markDone(2, 90);
    auto dep = lsq.olderStoreDependence(3, 0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::Forward);
    EXPECT_EQ(dep.readyCycle, 90u + Lsq::forwardLatency);
}

TEST(LsqTest, YoungerStoreDoesNotBlockLoad)
{
    Lsq lsq(8);
    lsq.push(1, false, 0x100, 8); // load first (older)
    lsq.push(2, true, 0x100, 8);  // store younger
    auto dep = lsq.olderStoreDependence(1, 0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::None);
}

TEST(LsqTest, RemoveYoungestForSquash)
{
    Lsq lsq(8);
    lsq.push(1, true, 0x100, 8);
    lsq.push(2, false, 0x200, 8);
    lsq.removeYoungest(2);
    EXPECT_EQ(lsq.occupancy(), 1u);
}

TEST(RenameTest, InitialMappingIsIdentity)
{
    RenameUnit rename(128, 128);
    EXPECT_EQ(rename.mapOf(isa::RegClass::Int, 5), 5);
    EXPECT_EQ(rename.mapOf(isa::RegClass::Fp, 7), 7);
    EXPECT_EQ(rename.freeRegs(isa::RegClass::Int),
              128u - (unsigned)numIntRegs);
}

TEST(RenameTest, RenameAllocatesAndRemaps)
{
    RenameUnit rename(40, 40);
    PhysRegId prev;
    PhysRegId fresh = rename.renameDst(isa::RegClass::Int, 3, prev);
    EXPECT_EQ(prev, 3);
    EXPECT_NE(fresh, 3);
    EXPECT_EQ(rename.mapOf(isa::RegClass::Int, 3), fresh);
    EXPECT_EQ(rename.freeRegs(isa::RegClass::Int), 7u);
}

TEST(RenameTest, CommitFreesPreviousMapping)
{
    RenameUnit rename(40, 40);
    PhysRegId prev;
    rename.renameDst(isa::RegClass::Int, 3, prev);
    size_t before = rename.freeRegs(isa::RegClass::Int);
    rename.freeReg(isa::RegClass::Int, prev);
    EXPECT_EQ(rename.freeRegs(isa::RegClass::Int), before + 1);
}

TEST(RenameTest, RollbackRestoresMapInReverseOrder)
{
    RenameUnit rename(40, 40);
    PhysRegId prev1, prev2;
    PhysRegId p1 = rename.renameDst(isa::RegClass::Int, 3, prev1);
    PhysRegId p2 = rename.renameDst(isa::RegClass::Int, 3, prev2);
    EXPECT_EQ(prev2, p1);
    // Squash youngest-first.
    rename.rollback(isa::RegClass::Int, 3, p2, prev2);
    EXPECT_EQ(rename.mapOf(isa::RegClass::Int, 3), p1);
    rename.rollback(isa::RegClass::Int, 3, p1, prev1);
    EXPECT_EQ(rename.mapOf(isa::RegClass::Int, 3), 3);
    EXPECT_EQ(rename.freeRegs(isa::RegClass::Int), 8u);
}

TEST(RenameTest, IntAndFpFilesAreIndependent)
{
    RenameUnit rename(40, 48);
    PhysRegId prev;
    rename.renameDst(isa::RegClass::Int, 3, prev);
    EXPECT_EQ(rename.mapOf(isa::RegClass::Fp, 3), 3);
    EXPECT_EQ(rename.freeRegs(isa::RegClass::Fp), 16u);
}

TEST(FuPoolTest, MappingMatchesTableI)
{
    EXPECT_EQ(fuTypeOf(isa::OpClass::IntAlu), FuType::IntAlu);
    EXPECT_EQ(fuTypeOf(isa::OpClass::Branch), FuType::IntAlu);
    EXPECT_EQ(fuTypeOf(isa::OpClass::IntMul), FuType::IntMulDiv);
    EXPECT_EQ(fuTypeOf(isa::OpClass::IntDiv), FuType::IntMulDiv);
    EXPECT_EQ(fuTypeOf(isa::OpClass::Load), FuType::LdSt);
    EXPECT_EQ(fuTypeOf(isa::OpClass::Store), FuType::LdSt);
    EXPECT_EQ(fuTypeOf(isa::OpClass::FpDiv), FuType::Fpu);
}

TEST(FuPoolTest, PerCycleThroughputLimit)
{
    FuPool pool(2, 1, 2, 2);
    EXPECT_TRUE(pool.acquire(FuType::IntAlu, 10, 1));
    EXPECT_TRUE(pool.acquire(FuType::IntAlu, 10, 1));
    EXPECT_FALSE(pool.acquire(FuType::IntAlu, 10, 1)); // both busy
    EXPECT_TRUE(pool.acquire(FuType::IntAlu, 11, 1));  // next cycle
}

TEST(FuPoolTest, UnpipelinedOpsBlockTheUnit)
{
    FuPool pool(2, 1, 2, 2);
    EXPECT_TRUE(pool.acquire(FuType::IntMulDiv, 10, 20)); // divide
    EXPECT_FALSE(pool.available(FuType::IntMulDiv, 15));
    EXPECT_FALSE(pool.acquire(FuType::IntMulDiv, 29, 1));
    EXPECT_TRUE(pool.acquire(FuType::IntMulDiv, 30, 1));
}

TEST(FuPoolTest, GroupsAreIndependent)
{
    FuPool pool(1, 1, 1, 1);
    EXPECT_TRUE(pool.acquire(FuType::IntAlu, 0, 1));
    EXPECT_TRUE(pool.acquire(FuType::Fpu, 0, 1));
    EXPECT_TRUE(pool.acquire(FuType::LdSt, 0, 1));
    EXPECT_FALSE(pool.acquire(FuType::IntAlu, 0, 1));
}

} // namespace
} // namespace pubs::cpu
