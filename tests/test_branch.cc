/**
 * @file
 * Branch-prediction tests: each predictor learns the patterns it should,
 * the BTB and RAS behave, and the JRS confidence counters follow the
 * paper's resetting semantics.
 */

#include <gtest/gtest.h>

#include "branch/bimode.hh"
#include "branch/btb.hh"
#include "branch/confidence.hh"
#include "branch/gshare.hh"
#include "branch/perceptron.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "branch/tournament.hh"
#include "common/rng.hh"

namespace pubs::branch
{
namespace
{

/** Train on a repeating pattern and return the steady-state accuracy. */
double
accuracyOnPattern(BranchPredictor &pred, Pc pc,
                  const std::vector<bool> &pattern, int rounds)
{
    // Warm up for half the rounds, measure the rest.
    int correct = 0, measured = 0;
    for (int r = 0; r < rounds; ++r) {
        for (bool taken : pattern) {
            bool guess = pred.predict(pc);
            pred.update(pc, taken);
            if (r >= rounds / 2) {
                ++measured;
                correct += guess == taken;
            }
        }
    }
    return (double)correct / measured;
}

using MakerFn = std::unique_ptr<BranchPredictor> (*)();

class PredictorPattern
    : public ::testing::TestWithParam<PredictorKind>
{
  protected:
    std::unique_ptr<BranchPredictor> pred_ =
        makePredictor(GetParam());
};

TEST_P(PredictorPattern, LearnsAlwaysTaken)
{
    EXPECT_GT(accuracyOnPattern(*pred_, 0x1000, {true}, 200), 0.95);
}

TEST_P(PredictorPattern, LearnsAlwaysNotTaken)
{
    EXPECT_GT(accuracyOnPattern(*pred_, 0x1000, {false}, 200), 0.95);
}

TEST_P(PredictorPattern, LearnsShortPeriodicPattern)
{
    // T T T N repeating: any history-based predictor should master it.
    EXPECT_GT(accuracyOnPattern(*pred_, 0x1000,
                                {true, true, true, false}, 300),
              0.9);
}

TEST_P(PredictorPattern, CannotBeatRandomness)
{
    Rng rng(7);
    int correct = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        bool taken = rng.chance(0.5);
        bool guess = pred_->predict(0x1000);
        pred_->update(0x1000, taken);
        correct += guess == taken;
    }
    EXPECT_NEAR((double)correct / trials, 0.5, 0.05);
}

TEST_P(PredictorPattern, HasNonZeroCost)
{
    if (GetParam() != PredictorKind::AlwaysTaken) {
        EXPECT_GT(pred_->costBits(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PredictorPattern,
    ::testing::Values(PredictorKind::Perceptron,
                      PredictorKind::PerceptronLarge,
                      PredictorKind::Gshare, PredictorKind::Bimode,
                      PredictorKind::Tournament),
    [](const auto &info) {
        std::string name = predictorKindName(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(PerceptronTest, TableIConfiguration)
{
    auto pred = makePredictor(PredictorKind::Perceptron);
    auto *perceptron = dynamic_cast<Perceptron *>(pred.get());
    ASSERT_NE(perceptron, nullptr);
    EXPECT_EQ(perceptron->historyBits(), 34u);
    EXPECT_EQ(perceptron->tableEntries(), 256u);
    EXPECT_EQ(perceptron->threshold(), (int)(1.93 * 34 + 14));
}

TEST(PerceptronTest, LargeConfigurationCostsMore)
{
    auto small = makePredictor(PredictorKind::Perceptron);
    auto large = makePredictor(PredictorKind::PerceptronLarge);
    EXPECT_GT(large->costBits(), small->costBits());
    // Section V-F: the enlargement is "more than double" the default.
    EXPECT_GT((double)large->costBits(), 2.0 * (double)small->costBits());
}

TEST(PerceptronTest, LearnsLinearlySeparableCorrelation)
{
    // Outcome = history[2]: a single weight suffices.
    Perceptron pred(8, 64);
    uint64_t history = 0;
    int correct = 0;
    const int trials = 4000;
    for (int i = 0; i < trials; ++i) {
        bool taken = (history >> 2) & 1;
        bool guess = pred.predict(0x1000);
        pred.update(0x1000, taken);
        if (i > trials / 2)
            correct += guess == taken;
        history = (history << 1) | (taken ? 1 : 0);
        // keep an independent driver pattern in the low bit
        if (i % 3 == 0)
            history ^= 1;
    }
    EXPECT_GT((double)correct / (trials / 2 - 1), 0.9);
}

TEST(BtbTest, HitAfterUpdate)
{
    Btb btb(16, 2);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    auto target = btb.lookup(0x1000);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 0x2000u);
}

TEST(BtbTest, LruReplacementWithinSet)
{
    Btb btb(4, 2); // pcs 4 instructions apart in the same set: stride 16
    Pc a = 0x1000, b = a + 4 * 16, c = a + 8 * 16;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.lookup(a);      // touch a so b becomes LRU
    btb.update(c, 3);   // evicts b
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(BtbTest, UpdateRefreshesTarget)
{
    Btb btb(16, 4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(BtbTest, TableIConfigurationCost)
{
    Btb btb(2048, 4);
    EXPECT_GT(btb.costBits(), 0u);
}

TEST(RasTest, PushPopOrder)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(RasTest, OverflowWrapsKeepingNewest)
{
    Ras ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(ConfidenceTest, ResettingCounterSemantics)
{
    ResettingCounter counter(3); // max = 7
    counter.initialise(true);
    EXPECT_TRUE(counter.confident()); // init to max on correct
    counter.update(false);
    EXPECT_FALSE(counter.confident()); // reset to zero
    EXPECT_EQ(counter.value(), 0u);
    for (int i = 0; i < 6; ++i)
        counter.update(true);
    EXPECT_FALSE(counter.confident()); // 6 < 7
    counter.update(true);
    EXPECT_TRUE(counter.confident()); // saturated
    counter.update(true);
    EXPECT_EQ(counter.value(), 7u); // stays saturated
}

TEST(ConfidenceTest, InitialiseIncorrectStartsAtZero)
{
    ResettingCounter counter(6);
    counter.initialise(false);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_FALSE(counter.confident());
}

TEST(ConfidenceTest, WiderCountersAreHarderToSaturate)
{
    // With misprediction probability p, P(confident) collapses as the
    // width grows — the effect behind Fig. 11's unconfident-rate line.
    auto confidentFraction = [](unsigned bits, double accuracy) {
        Rng rng(13);
        ResettingCounter counter(bits);
        counter.initialise(true);
        int confident = 0;
        const int trials = 20000;
        for (int i = 0; i < trials; ++i) {
            confident += counter.confident();
            counter.update(rng.chance(accuracy));
        }
        return (double)confident / trials;
    };
    double narrow = confidentFraction(2, 0.95);
    double wide = confidentFraction(8, 0.95);
    EXPECT_GT(narrow, wide);
}

TEST(ConfidenceTest, UpDownCounterToleratesNoise)
{
    UpDownCounter updown(4);
    updown.initialise(true);
    updown.update(false); // one mistake only decrements
    EXPECT_EQ(updown.value(), 14u);
    ResettingCounter resetting(4);
    resetting.initialise(true);
    resetting.update(false);
    EXPECT_EQ(resetting.value(), 0u);
}

TEST(Factory, NamesRoundTrip)
{
    EXPECT_STREQ(predictorKindName(PredictorKind::Perceptron),
                 "perceptron");
    EXPECT_STREQ(predictorKindName(PredictorKind::Gshare), "gshare");
    auto pred = makePredictor(PredictorKind::AlwaysTaken);
    EXPECT_TRUE(pred->predict(0x1234));
}

} // namespace
} // namespace pubs::branch
