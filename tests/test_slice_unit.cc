/**
 * @file
 * Tests for the decode-time slice unit: branch-slice construction via
 * def_tab/brslice_tab, confidence interplay, transitive (multi-hop)
 * linking, and the "blind" model.
 */

#include <gtest/gtest.h>

#include "pubs/slice_unit.hh"

namespace pubs::pubs
{
namespace
{

using isa::Opcode;
using trace::DynInst;

DynInst
alu(Pc pc, RegId dst, RegId src1, RegId src2 = invalidReg)
{
    DynInst di;
    di.pc = pc;
    di.op = Opcode::Add;
    di.dst = dst;
    di.src1 = src1;
    di.src2 = src2;
    return di;
}

DynInst
load(Pc pc, RegId dst, RegId base)
{
    DynInst di;
    di.pc = pc;
    di.op = Opcode::Ld;
    di.dst = dst;
    di.src1 = base;
    di.effAddr = 0x2000;
    di.memSize = 8;
    return di;
}

DynInst
branch(Pc pc, RegId a, RegId b)
{
    DynInst di;
    di.pc = pc;
    di.op = Opcode::Blt;
    di.src1 = a;
    di.src2 = b;
    return di;
}

/** Iterate one "loop body" through the slice unit, returning the
 *  decision for each instruction. */
std::vector<SliceDecision>
decodeAll(SliceUnit &unit, const std::vector<DynInst> &body)
{
    std::vector<SliceDecision> out;
    for (const auto &di : body)
        out.push_back(unit.decode(di));
    return out;
}

TEST(SliceUnit, BranchItselfIsInItsSlice)
{
    SliceUnit unit({});
    DynInst br = branch(0x1000, 1, 2);
    SliceDecision d = unit.decode(br);
    EXPECT_TRUE(d.inBranchSlice);
    // No conf_tab entry yet: treated as confident.
    EXPECT_FALSE(d.unconfident);
}

TEST(SliceUnit, DirectProducerJoinsSliceOnSecondPass)
{
    SliceUnit unit({});
    std::vector<DynInst> body = {
        alu(0x1000, /*dst=*/3, /*src=*/4),
        branch(0x1004, /*a=*/3, /*b=*/0),
    };
    // First pass: the producer decodes before the branch has linked it.
    auto first = decodeAll(unit, body);
    EXPECT_FALSE(first[0].inBranchSlice);
    EXPECT_TRUE(first[1].inBranchSlice);
    // Second pass: the brslice_tab now knows 0x1000 feeds the branch.
    auto second = decodeAll(unit, body);
    EXPECT_TRUE(second[0].inBranchSlice);
}

TEST(SliceUnit, TransitiveLinkingWalksBackwards)
{
    // c = f(a); d = g(c); branch(d): after two passes, both f and g are
    // slice members (step 2/3 of Section III-A2).
    SliceUnit unit({});
    std::vector<DynInst> body = {
        alu(0x1000, 5, 6),      // a -> r5
        alu(0x1004, 7, 5),      // r5 -> r7
        branch(0x1008, 7, 0),   // branch on r7
    };
    decodeAll(unit, body); // pass 1: links producer of r7 (0x1004)
    decodeAll(unit, body); // pass 2: 0x1004 in slice; links 0x1000
    auto third = decodeAll(unit, body);
    EXPECT_TRUE(third[0].inBranchSlice) << "transitive producer";
    EXPECT_TRUE(third[1].inBranchSlice) << "direct producer";
    EXPECT_TRUE(third[2].inBranchSlice) << "the branch";
}

TEST(SliceUnit, LoadsJoinSlicesThroughTheirAddressChain)
{
    SliceUnit unit({});
    std::vector<DynInst> body = {
        alu(0x1000, 2, 1),     // address -> r2
        load(0x1004, 3, 2),    // r3 = mem[r2]
        branch(0x1008, 3, 0),  // branch on loaded value
    };
    decodeAll(unit, body);
    decodeAll(unit, body);
    auto third = decodeAll(unit, body);
    EXPECT_TRUE(third[0].inBranchSlice);
    EXPECT_TRUE(third[1].inBranchSlice);
}

TEST(SliceUnit, NonSliceInstructionStaysOut)
{
    SliceUnit unit({});
    std::vector<DynInst> body = {
        alu(0x1000, 3, 4),     // feeds the branch
        alu(0x1004, 10, 11),   // independent computation
        branch(0x1008, 3, 0),
    };
    for (int i = 0; i < 4; ++i)
        decodeAll(unit, body);
    auto last = decodeAll(unit, body);
    EXPECT_TRUE(last[0].inBranchSlice);
    EXPECT_FALSE(last[1].inBranchSlice);
}

TEST(SliceUnit, UnconfidenceFollowsTheConfTab)
{
    SliceUnit unit({});
    std::vector<DynInst> body = {
        alu(0x1000, 3, 4),
        branch(0x1004, 3, 0),
    };
    decodeAll(unit, body);
    // Branch mispredicted: counter resets, slice becomes unconfident.
    unit.branchResolved(0x1004, false);
    auto d = decodeAll(unit, body);
    EXPECT_TRUE(d[0].inBranchSlice);
    EXPECT_TRUE(d[0].unconfident);
    EXPECT_TRUE(d[1].unconfident);

    // Long streak of correct predictions: confidence returns.
    for (int i = 0; i < 100; ++i)
        unit.branchResolved(0x1004, true);
    d = decodeAll(unit, body);
    EXPECT_TRUE(d[0].inBranchSlice);
    EXPECT_FALSE(d[0].unconfident);
    EXPECT_FALSE(d[1].unconfident);
}

TEST(SliceUnit, BlindModeTreatsEveryBranchAsUnconfident)
{
    PubsParams params;
    params.useConfTab = false;
    SliceUnit unit(params);
    std::vector<DynInst> body = {
        alu(0x1000, 3, 4),
        branch(0x1004, 3, 0),
    };
    decodeAll(unit, body);
    auto d = decodeAll(unit, body);
    EXPECT_TRUE(d[0].unconfident);
    EXPECT_TRUE(d[1].unconfident);
    EXPECT_DOUBLE_EQ(unit.unconfidentBranchRate(), 1.0);
}

TEST(SliceUnit, RedefinitionLeavesSliceMembershipStale)
{
    // If r3's producer changes to an instruction that never fed a
    // branch, the *new* producer is initially out of the slice (the
    // predictor is PC-indexed and learns over time).
    SliceUnit unit({});
    std::vector<DynInst> pass1 = {
        alu(0x1000, 3, 4),
        branch(0x1008, 3, 0),
    };
    decodeAll(unit, pass1);
    DynInst other = alu(0x2000, 3, 9); // new producer of r3
    SliceDecision d = unit.decode(other);
    EXPECT_FALSE(d.inBranchSlice);
    // But after the branch sees it once, it is linked too.
    unit.decode(branch(0x1008, 3, 0));
    d = unit.decode(other);
    EXPECT_TRUE(d.inBranchSlice);
}

TEST(SliceUnit, StoresNeverJoinSlices)
{
    SliceUnit unit({});
    DynInst st;
    st.pc = 0x1000;
    st.op = Opcode::St;
    st.src1 = 2;
    st.src2 = 3;
    st.effAddr = 0x2000;
    st.memSize = 8;
    for (int i = 0; i < 3; ++i) {
        SliceDecision d = unit.decode(st);
        EXPECT_FALSE(d.inBranchSlice);
        unit.decode(branch(0x1004, 3, 0));
    }
}

TEST(SliceUnit, FpDataflowUsesUnifiedRegisters)
{
    // An fp instruction writing f3 must not alias integer r3.
    SliceUnit unit({});
    DynInst fp;
    fp.pc = 0x1000;
    fp.op = Opcode::Fadd;
    fp.dst = 3; // f3
    fp.src1 = 4;
    fp.src2 = 5;
    unit.decode(fp);
    unit.decode(branch(0x1004, 3, 0)); // reads integer r3
    // Second pass: the fadd must NOT be linked via r3.
    SliceDecision d = unit.decode(fp);
    EXPECT_FALSE(d.inBranchSlice);
}

TEST(SliceUnit, CountsBranchesAndSliceInstructions)
{
    SliceUnit unit({});
    std::vector<DynInst> body = {
        alu(0x1000, 3, 4),
        branch(0x1004, 3, 0),
    };
    decodeAll(unit, body);
    decodeAll(unit, body);
    EXPECT_EQ(unit.dynamicBranches(), 2u);
    EXPECT_GE(unit.sliceInsts(), 3u); // 2 branches + linked producer
}

} // namespace
} // namespace pubs::pubs
