/**
 * @file
 * Stress and failure-injection tests: tiny structure sizes, saturated
 * FUs, deep recursion through the RAS, heavy memory dependences, and
 * degenerate PUBS configurations. The invariant throughout: the pipeline
 * never deadlocks and commits exactly the functional instruction stream.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "cpu/pipeline.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs::cpu
{
namespace
{

using sim::Machine;
using sim::makeConfig;

uint64_t
functionalCount(const isa::Program &prog)
{
    emu::Emulator emu(prog);
    trace::DynInst di;
    uint64_t n = 0;
    while (emu.step(di))
        ++n;
    return n;
}

PipelineStats
drain(const isa::Program &prog, const CoreParams &params)
{
    emu::Emulator emu(prog);
    Pipeline pipe(params, emu);
    pipe.run(UINT64_MAX / 2);
    EXPECT_TRUE(pipe.drained());
    return pipe.stats();
}

/** A branchy, store/load-heavy torture kernel that halts. */
isa::Program
tortureProgram()
{
    return isa::assemble(R"(
        li r1, 0
        li r2, 500
        li r3, 0x2000
        li r5, 3
        li r9, 97
    loop:
        addi r1, r1, 1
        mul r6, r1, r9
        rem r6, r6, r5
        st r6, r3, 0
        ld r4, r3, 0
        st r4, r3, 8
        ld r7, r3, 8
        div r8, r7, r5
        beq r6, r0, a
        bne r7, r0, b
    a:
        addi r10, r10, 1
        j c
    b:
        addi r11, r11, 1
    c:
        fcvt f1, r6
        fadd f2, f2, f1
        fdiv f3, f2, f1
        blt r1, r2, loop
        halt
    )", "torture");
}

struct Geometry
{
    const char *name;
    unsigned rob, iq, lsq, intRegs, fpRegs;
};

class TinyGeometry : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(TinyGeometry, CommitsExactlyTheFunctionalStream)
{
    const Geometry &g = GetParam();
    isa::Program prog = tortureProgram();
    CoreParams params = makeConfig(Machine::Base);
    params.robEntries = g.rob;
    params.iqEntries = g.iq;
    params.lsqEntries = g.lsq;
    params.intPhysRegs = g.intRegs;
    params.fpPhysRegs = g.fpRegs;
    PipelineStats stats = drain(prog, params);
    EXPECT_EQ(stats.committed, functionalCount(prog));
}

TEST_P(TinyGeometry, WorksWithPubsToo)
{
    const Geometry &g = GetParam();
    isa::Program prog = tortureProgram();
    CoreParams params = makeConfig(Machine::Pubs);
    params.robEntries = g.rob;
    params.iqEntries = g.iq;
    params.lsqEntries = g.lsq;
    params.intPhysRegs = g.intRegs;
    params.fpPhysRegs = g.fpRegs;
    params.pubs.priorityEntries = std::min(2u, g.iq - 1);
    PipelineStats stats = drain(prog, params);
    EXPECT_EQ(stats.committed, functionalCount(prog));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TinyGeometry,
    ::testing::Values(Geometry{"minimal", 8, 4, 2, 40, 40},
                      Geometry{"narrow_iq", 64, 8, 16, 64, 64},
                      Geometry{"narrow_lsq", 64, 32, 2, 64, 64},
                      Geometry{"narrow_regs", 64, 32, 16, 36, 36},
                      Geometry{"tiny_rob", 6, 4, 4, 48, 48}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(Stress, MshrStarvedMemorySystem)
{
    isa::Program prog = tortureProgram();
    CoreParams params = makeConfig(Machine::Base);
    params.memory.l1d.mshrs = 1;
    params.memory.l2.mshrs = 1;
    params.memory.l1i.mshrs = 1;
    PipelineStats stats = drain(prog, params);
    EXPECT_EQ(stats.committed, functionalCount(prog));
}

TEST(Stress, SingleFunctionUnits)
{
    isa::Program prog = tortureProgram();
    CoreParams params = makeConfig(Machine::Base);
    params.numIntAlu = 1;
    params.numIntMulDiv = 1;
    params.numLdSt = 1;
    params.numFpu = 1;
    params.issueWidth = 1;
    PipelineStats stats = drain(prog, params);
    EXPECT_EQ(stats.committed, functionalCount(prog));
}

TEST(Stress, DeepRecursionOverflowsRasGracefully)
{
    // Recursion depth 64 >> RAS depth 16: returns beyond the stack
    // mispredict, but execution stays correct.
    isa::Program prog = isa::assemble(R"(
        li r1, 64
        li r2, 0x80000
        jal r31, rec
        halt
    rec:
        st r31, r2, 0
        addi r2, r2, 8
        addi r1, r1, -1
        beq r1, r0, basecase
        jal r31, rec
    basecase:
        addi r2, r2, -8
        ld r31, r2, 0
        jr r31
    )", "recursion");
    CoreParams params = makeConfig(Machine::Base);
    params.rasDepth = 16;
    PipelineStats stats = drain(prog, params);
    EXPECT_EQ(stats.committed, functionalCount(prog));
    EXPECT_GT(stats.indirectMispredicts, 0u);
}

TEST(Stress, TinyPriorityPartitionUnderBlindPubs)
{
    // Blind PUBS (everything unconfident) with one priority entry and
    // the stall policy: maximal pressure on the partition.
    wl::Workload w = wl::makeWorkload("astar_like");
    CoreParams params = makeConfig(Machine::Pubs);
    params.pubs.useConfTab = false;
    params.pubs.priorityEntries = 1;
    sim::RunResult r = sim::simulate(params, w.program, 10000, 50000);
    EXPECT_EQ(r.instructions, 50000u);
    EXPECT_GT(r.pipeline.priorityStallCycles, 0u);
}

TEST(Stress, ZeroWarmupRuns)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    sim::RunResult r =
        sim::simulate(makeConfig(Machine::Pubs), w.program, 0, 20000);
    EXPECT_EQ(r.instructions, 20000u);
}

TEST(Stress, BackToBackMispredicts)
{
    // Every iteration flips a data-dependent branch with ~50% rate and
    // almost no other work: mispredict-dominated execution.
    isa::Program prog = isa::assemble(R"(
        li r2, 0x100000
        li r10, 255
        li r20, 0x20000000
        li r1, 0
        li r9, 2000
    loop:
        and r4, r1, r10
        slli r5, r4, 3
        add r5, r5, r2
        ld r3, r5, 0
        blt r3, r20, t
        xor r11, r11, r3
        j n
    t:
        add r11, r11, r3
    n:
        addi r1, r1, 1
        blt r1, r9, loop
        halt
    )", "flipper");
    Rng rng(5);
    for (int i = 0; i < 256; ++i)
        prog.addData64(0x100000 + (Addr)i * 8, rng.below(1u << 30));
    CoreParams params = makeConfig(Machine::Pubs);
    PipelineStats stats = drain(prog, params);
    EXPECT_EQ(stats.committed, functionalCount(prog));
    EXPECT_GT(stats.condMispredicts, 300u);
    EXPECT_GT(stats.squashed, 0u);
}

TEST(Stress, DistributedIqTortureDrains)
{
    isa::Program prog = tortureProgram();
    CoreParams params = makeConfig(Machine::Pubs);
    params.distributedIq = true;
    PipelineStats stats = drain(prog, params);
    EXPECT_EQ(stats.committed, functionalCount(prog));
}

TEST(Stress, LongRunStaysConsistent)
{
    // A longer mixed run: fetched - squashed == committed at drain,
    // and no instruction is lost or duplicated.
    wl::Workload w = wl::makeWorkload("xalancbmk_like");
    emu::Emulator emu(w.program);
    Pipeline pipe(makeConfig(Machine::PubsAge), emu);
    pipe.run(150000);
    const PipelineStats &s = pipe.stats();
    // In-flight instructions bounded by the window.
    EXPECT_LE(s.fetched - s.squashed - s.committed,
              (uint64_t)(pipe.params().robEntries +
                         pipe.params().frontendDepth *
                             pipe.params().fetchWidth +
                         8));
}

} // namespace
} // namespace pubs::cpu
