/**
 * @file
 * Unit tests for the micro-ISA: opcode metadata, operand classification,
 * the program container, the fluent builder, and the text assembler.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/builder.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace pubs::isa
{
namespace
{

TEST(Isa, OpInfoTableIsComplete)
{
    for (size_t i = 0; i < (size_t)Opcode::NumOpcodes; ++i) {
        auto op = (Opcode)i;
        const OpInfo &info = opInfo(op);
        EXPECT_NE(info.mnemonic, nullptr);
        EXPECT_GT(info.latency, 0u) << info.mnemonic;
        EXPECT_LT((size_t)info.cls, (size_t)OpClass::NumClasses);
    }
}

TEST(Isa, MnemonicsAreUnique)
{
    std::set<std::string> seen;
    for (size_t i = 0; i < (size_t)Opcode::NumOpcodes; ++i)
        EXPECT_TRUE(seen.insert(mnemonic((Opcode)i)).second)
            << mnemonic((Opcode)i);
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(isBranch(Opcode::Beq));
    EXPECT_TRUE(isBranch(Opcode::Jr));
    EXPECT_FALSE(isBranch(Opcode::Add));
    EXPECT_TRUE(isCondBranch(Opcode::Bgeu));
    EXPECT_FALSE(isCondBranch(Opcode::J));
    EXPECT_TRUE(isLoad(Opcode::Fld));
    EXPECT_TRUE(isStore(Opcode::Sw));
    EXPECT_TRUE(isMem(Opcode::Ld));
    EXPECT_FALSE(isMem(Opcode::Fadd));
}

TEST(Isa, LatenciesMatchTableI)
{
    EXPECT_EQ(opInfo(Opcode::Add).latency, 1u);
    EXPECT_EQ(opInfo(Opcode::Mul).latency, 3u);
    EXPECT_TRUE(opInfo(Opcode::Div).unpipelined);
    EXPECT_TRUE(opInfo(Opcode::Fdiv).unpipelined);
    EXPECT_FALSE(opInfo(Opcode::Fmul).unpipelined);
}

TEST(Isa, SrcRegClassForMemoryOps)
{
    // fst stores an FP value through an integer base register.
    Inst fst{Opcode::Fst, invalidReg, 3, 5, 16};
    EXPECT_EQ(srcRegClass(fst, 0), RegClass::Int);
    EXPECT_EQ(srcRegClass(fst, 1), RegClass::Fp);

    Inst fld{Opcode::Fld, 2, 3, invalidReg, 0};
    EXPECT_EQ(srcRegClass(fld, 0), RegClass::Int);
    EXPECT_EQ(dstRegClass(fld), RegClass::Fp);

    Inst add{Opcode::Add, 1, 2, 3, 0};
    EXPECT_EQ(srcRegClass(add, 0), RegClass::Int);
    EXPECT_EQ(srcRegClass(add, 1), RegClass::Int);
}

TEST(Isa, UnifiedRegSpace)
{
    EXPECT_EQ(unifiedReg(RegClass::Int, 0), 0);
    EXPECT_EQ(unifiedReg(RegClass::Int, 31), 31);
    EXPECT_EQ(unifiedReg(RegClass::Fp, 0), 32);
    EXPECT_EQ(unifiedReg(RegClass::Fp, 31), 63);
}

TEST(Isa, Disassemble)
{
    Inst add{Opcode::Add, 1, 2, 3, 0};
    EXPECT_EQ(disassemble(add), "add r1, r2, r3");
    Inst ld{Opcode::Ld, 4, 5, invalidReg, 16};
    EXPECT_EQ(disassemble(ld), "ld r4, r5, 16");
    Inst fadd{Opcode::Fadd, 1, 2, 3, 0};
    EXPECT_EQ(disassemble(fadd), "fadd f1, f2, f3");
}

TEST(Program, PcMapping)
{
    Program prog("t");
    prog.append({Opcode::Nop, invalidReg, invalidReg, invalidReg, 0});
    prog.append({Opcode::Halt, invalidReg, invalidReg, invalidReg, 0});
    EXPECT_EQ(prog.pcOf(0), Program::basePc());
    EXPECT_EQ(prog.pcOf(1), Program::basePc() + instBytes);
    EXPECT_EQ(prog.indexOf(prog.pcOf(1)), 1u);
    EXPECT_TRUE(prog.contains(prog.pcOf(0)));
    EXPECT_FALSE(prog.contains(prog.pcOf(0) + 1)); // misaligned
    EXPECT_FALSE(prog.contains(prog.pcOf(1) + instBytes)); // past end
}

TEST(Program, Labels)
{
    Program prog("t");
    prog.defineLabel("start");
    prog.append({Opcode::Nop, invalidReg, invalidReg, invalidReg, 0});
    prog.defineLabel("end");
    EXPECT_TRUE(prog.hasLabel("start"));
    EXPECT_EQ(prog.labelIndex("start"), 0u);
    EXPECT_EQ(prog.labelIndex("end"), 1u);
    EXPECT_FALSE(prog.hasLabel("nope"));
}

TEST(Program, DataInits)
{
    Program prog("t");
    prog.addData64(0x2000, 0x1122334455667788ull);
    ASSERT_EQ(prog.dataInits().size(), 1u);
    EXPECT_EQ(prog.dataInits()[0].addr, 0x2000u);
    EXPECT_EQ(prog.dataInits()[0].bytes[0], 0x88); // little endian
    EXPECT_EQ(prog.dataInits()[0].bytes[7], 0x11);
}

TEST(Builder, ForwardAndBackwardLabels)
{
    ProgramBuilder b("t");
    b.label("top");
    b.addi(1, 1, 1);
    b.beq(1, 2, "done");   // forward reference
    b.jump("top");         // backward reference
    b.label("done");
    b.halt();
    Program prog = b.build();
    EXPECT_EQ(prog.at(1).imm, 3); // "done"
    EXPECT_EQ(prog.at(2).imm, 0); // "top"
}

TEST(Builder, ListingContainsLabels)
{
    ProgramBuilder b("t");
    b.label("loop").addi(1, 1, 1).jump("loop");
    Program prog = b.build();
    std::string listing = prog.listing();
    EXPECT_NE(listing.find("loop:"), std::string::npos);
    EXPECT_NE(listing.find("addi r1, r1, 1"), std::string::npos);
}

TEST(Builder, StoreOperandShape)
{
    ProgramBuilder b("t");
    b.st(7, 2, 24).fst(3, 4, 8);
    Program prog = b.build();
    // store value is src2, base is src1.
    EXPECT_EQ(prog.at(0).src2, 7);
    EXPECT_EQ(prog.at(0).src1, 2);
    EXPECT_EQ(prog.at(0).imm, 24);
    EXPECT_EQ(prog.at(1).src2, 3);
}

TEST(Assembler, RoundTripBasicProgram)
{
    const char *src = R"(
        # compute 5 + 7
        li   r1, 5
        li   r2, 7
        add  r3, r1, r2
        halt
    )";
    Program prog = assemble(src);
    ASSERT_EQ(prog.size(), 4u);
    EXPECT_EQ(prog.at(0).op, Opcode::Li);
    EXPECT_EQ(prog.at(2).op, Opcode::Add);
    EXPECT_EQ(prog.at(2).dst, 3);
}

TEST(Assembler, LabelsAndBranches)
{
    const char *src = R"(
        li r1, 0
    loop:
        addi r1, r1, 1
        blt  r1, r2, loop
        halt
    )";
    Program prog = assemble(src);
    EXPECT_EQ(prog.at(2).imm, 1); // loop label index
}

TEST(Assembler, MemoryAndFpForms)
{
    const char *src = R"(
        ld   r2, r1, 8
        st   r2, r1, 16
        fld  f1, r1, 0
        fst  f1, r1, 8
        fadd f2, f1, f1
        fcvt f3, r2
        jal  r31, fn
    fn: jr   r31
        .data64 0x2000 42
    )";
    Program prog = assemble(src);
    EXPECT_EQ(prog.size(), 8u);
    EXPECT_EQ(prog.at(0).op, Opcode::Ld);
    EXPECT_EQ(prog.at(1).src2, 2);
    EXPECT_EQ(prog.at(5).op, Opcode::Fcvt);
    ASSERT_EQ(prog.dataInits().size(), 1u);
}

TEST(Assembler, HexAndNegativeImmediates)
{
    Program prog = assemble("li r1, 0x10\nli r2, -5\nhalt\n");
    EXPECT_EQ(prog.at(0).imm, 16);
    EXPECT_EQ(prog.at(1).imm, -5);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nbogus r1, r2\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Assembler, RejectsUndefinedLabel)
{
    EXPECT_THROW(assemble("j nowhere\n"), AsmError);
}

TEST(Assembler, RejectsDuplicateLabel)
{
    EXPECT_THROW(assemble("a:\nnop\na:\nnop\n"), AsmError);
}

TEST(Assembler, RejectsWrongOperandCount)
{
    EXPECT_THROW(assemble("add r1, r2\n"), AsmError);
    EXPECT_THROW(assemble("halt r1\n"), AsmError);
}

TEST(Assembler, RejectsWrongRegisterClass)
{
    EXPECT_THROW(assemble("add r1, f2, r3\n"), AsmError);
    EXPECT_THROW(assemble("fadd r1, f2, f3\n"), AsmError);
    EXPECT_THROW(assemble("add r1, r2, r99\n"), AsmError);
}

} // namespace
} // namespace pubs::isa
