/**
 * @file
 * Pipeline integration tests: end-to-end timing behaviour of the
 * out-of-order core, misprediction/wrong-path/squash correctness, PUBS
 * dispatch, the mode switch, and cross-configuration sanity.
 */

#include <gtest/gtest.h>

#include "common/error.hh"

#include "emu/emulator.hh"
#include "cpu/pipeline.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs::cpu
{
namespace
{

using sim::Machine;
using sim::makeConfig;

/** Run @p source through a pipeline until drained; return the stats. */
PipelineStats
runToDrain(const std::string &source, const CoreParams &params)
{
    isa::Program prog = isa::assemble(source);
    emu::Emulator emu(prog);
    Pipeline pipe(params, emu);
    pipe.run(UINT64_MAX / 2);
    EXPECT_TRUE(pipe.drained());
    return pipe.stats();
}

/** Functional instruction count of @p source. */
uint64_t
functionalCount(const std::string &source)
{
    isa::Program prog = isa::assemble(source);
    emu::Emulator emu(prog);
    trace::DynInst di;
    uint64_t n = 0;
    while (emu.step(di))
        ++n;
    return n;
}

TEST(Pipeline, StraightLineCommitsEverything)
{
    // Loop a straight-line body so the I-cache warms up.
    std::string src = "li r9, 0\nli r10, 200\nloop:\n";
    for (int i = 2; i <= 20; ++i)
        src += "addi r" + std::to_string(i % 8 + 1) + ", r1, " +
               std::to_string(i) + "\n";
    src += "addi r9, r9, 1\nblt r9, r10, loop\nhalt\n";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_EQ(stats.committed, functionalCount(src));
    EXPECT_GT(stats.ipc(), 0.5);
}

TEST(Pipeline, DependentChainBoundsIpc)
{
    // A pure serial dependence chain can never exceed IPC 1.
    std::string src = "li r1, 0\n";
    for (int i = 0; i < 64; ++i)
        src += "addi r1, r1, 1\n";
    src += "halt\n";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_LE(stats.ipc(), 1.1);
    EXPECT_EQ(stats.committed, 66u);
}

TEST(Pipeline, IndependentOpsExploitWidth)
{
    // Independent single-cycle ops: should clearly beat IPC 1 (bounded
    // by the 2 iALUs of Table I). Looped so the I-cache warms up.
    std::string src = "li r9, 0\nli r10, 300\nloop:\n";
    for (int i = 0; i < 16; ++i)
        src += "li r" + std::to_string(i % 8 + 1) + ", " +
               std::to_string(i) + "\n";
    src += "addi r9, r9, 1\nblt r9, r10, loop\nhalt\n";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_GT(stats.ipc(), 1.4);
}

TEST(Pipeline, MulAndDivLatencies)
{
    // 8 dependent divides (20 cycles each, unpipelined) dominate.
    std::string src = "li r1, 1000000\nli r2, 3\n";
    for (int i = 0; i < 8; ++i)
        src += "div r1, r1, r2\n";
    src += "halt\n";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_GT(stats.cycles, 8u * 20u);
}

TEST(Pipeline, CommitMatchesFunctionalExecution)
{
    // Branchy program: every functional instruction commits exactly
    // once despite mispredictions, wrong-path fetch, and squashes.
    std::string src = R"(
        li r1, 0
        li r2, 200
        li r3, 0x2000
        li r5, 2
    loop:
        addi r1, r1, 1
        st r1, r3, 0
        ld r4, r3, 0
        rem r6, r4, r5
        beq r6, r0, even
        addi r7, r7, 1
        j next
    even:
        addi r8, r8, 1
    next:
        blt r1, r2, loop
        halt
    )";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_EQ(stats.committed, functionalCount(src));
    EXPECT_GT(stats.condBranches, 300u);
}

TEST(Pipeline, WrongPathInstructionsAreFetchedAndSquashed)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    Pipeline pipe(makeConfig(Machine::Base), emu);
    pipe.run(50000);
    const PipelineStats &stats = pipe.stats();
    EXPECT_GT(stats.condMispredicts, 100u);
    EXPECT_GT(stats.wrongPathFetched, stats.condMispredicts);
    // Everything fetched beyond a mispredicted branch must be squashed.
    EXPECT_GT(stats.squashed, 0u);
    EXPECT_GE(stats.squashed, stats.wrongPathFetched -
                                  stats.condMispredicts); // none commit
}

TEST(Pipeline, MisspecPenaltyIncludesFrontend)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    CoreParams params = makeConfig(Machine::Base);
    Pipeline pipe(params, emu);
    pipe.run(50000);
    // Penalty >= front-end depth + 1 execute cycle, by construction.
    EXPECT_GT(pipe.stats().avgMisspecPenalty(),
              (double)params.frontendDepth + 1.0);
}

TEST(Pipeline, PubsReducesMisspecPenaltyOnBranchyCode)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::RunResult base =
        sim::simulate(makeConfig(Machine::Base), w.program, 50000, 200000);
    sim::RunResult pubs =
        sim::simulate(makeConfig(Machine::Pubs), w.program, 50000, 200000);
    EXPECT_LT(pubs.avgMisspecPenalty, base.avgMisspecPenalty);
    EXPECT_GT(pubs.speedupOver(base), 1.05);
}

TEST(Pipeline, PubsUsesPriorityEntries)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    Pipeline pipe(makeConfig(Machine::Pubs), emu);
    pipe.run(50000);
    EXPECT_GT(pipe.stats().priorityDispatches, 1000u);
    EXPECT_GT(pipe.stats().normalDispatches,
              pipe.stats().priorityDispatches);
}

TEST(Pipeline, ModeSwitchDisablesPubsOnMemoryBoundCode)
{
    wl::Workload w = wl::makeWorkload("mcf_like");
    emu::Emulator emu(w.program);
    Pipeline pipe(makeConfig(Machine::Pubs), emu);
    pipe.run(300000);
    ASSERT_NE(pipe.modeSwitch(), nullptr);
    EXPECT_LT(pipe.modeSwitch()->enabledFraction(), 0.2);
}

TEST(Pipeline, DeterministicAcrossIdenticalRuns)
{
    wl::Workload w = wl::makeWorkload("gobmk_like");
    auto runOnce = [&w]() {
        emu::Emulator emu(w.program);
        Pipeline pipe(makeConfig(Machine::Pubs), emu);
        pipe.run(60000);
        return pipe.stats().cycles;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(Pipeline, SeedChangesRandomQueueTiming)
{
    wl::Workload w = wl::makeWorkload("gobmk_like");
    auto runWithSeed = [&w](uint64_t seed) {
        CoreParams params = makeConfig(Machine::Base);
        params.seed = seed;
        emu::Emulator emu(w.program);
        Pipeline pipe(params, emu);
        pipe.run(60000);
        return pipe.stats().cycles;
    };
    // Different random-queue placement: almost surely different cycles.
    EXPECT_NE(runWithSeed(1), runWithSeed(99));
}

TEST(Pipeline, AgeMatrixImprovesRandomQueueIpc)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    sim::RunResult base =
        sim::simulate(makeConfig(Machine::Base), w.program, 50000, 200000);
    sim::RunResult age =
        sim::simulate(makeConfig(Machine::Age), w.program, 50000, 200000);
    EXPECT_GT(age.ipc, base.ipc);
}

TEST(Pipeline, ShiftingQueueBeatsRandomQueue)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    CoreParams shifting = makeConfig(Machine::Base);
    shifting.iqKind = iq::IqKind::Shifting;
    sim::RunResult base =
        sim::simulate(makeConfig(Machine::Base), w.program, 50000, 150000);
    sim::RunResult shift =
        sim::simulate(shifting, w.program, 50000, 150000);
    EXPECT_GT(shift.ipc, base.ipc * 0.98); // age order should not lose
}

TEST(Pipeline, StoreLoadForwardingWorks)
{
    // A load immediately after a store to the same address must not
    // wait for a full cache round trip.
    std::string src = R"(
        li r1, 0x2000
        li r2, 7
        st r2, r1, 0
        ld r3, r1, 0
        addi r3, r3, 1
        halt
    )";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_EQ(stats.committed, 6u);
    // Cold I-cache costs ~312 cycles; forwarding must not add another
    // DRAM round trip on top of it.
    EXPECT_LT(stats.cycles, 500u);
}

TEST(Pipeline, IcacheMissStallsFetchOnce)
{
    std::string src = "nop\nhalt\n";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    // Cold I-cache: the first fetch goes to DRAM (300+ cycles).
    EXPECT_GT(stats.cycles, 300u);
}

TEST(Pipeline, RunReturnsCommittedDelta)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    emu::Emulator emu(w.program);
    Pipeline pipe(makeConfig(Machine::Base), emu);
    EXPECT_EQ(pipe.run(10000), 10000u);
    EXPECT_EQ(pipe.run(5000), 5000u);
    EXPECT_EQ(pipe.stats().committed, 15000u);
}

TEST(Pipeline, ResetStatsKeepsTablesWarm)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    emu::Emulator emu(w.program);
    Pipeline pipe(makeConfig(Machine::Base), emu);
    pipe.run(20000);
    pipe.resetStats();
    EXPECT_EQ(pipe.stats().committed, 0u);
    pipe.run(20000);
    // Warm predictor: essentially no mispredictions on easy code.
    EXPECT_LT(pipe.stats().branchMpki(), 1.0);
}

TEST(Pipeline, FillStatsExportsKeyMetrics)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    emu::Emulator emu(w.program);
    Pipeline pipe(makeConfig(Machine::Pubs), emu);
    pipe.run(20000);
    StatGroup group("core");
    pipe.fillStats(group);
    EXPECT_TRUE(group.has("ipc"));
    EXPECT_TRUE(group.has("branch_mpki"));
    EXPECT_TRUE(group.has("avg_misspec_penalty"));
    EXPECT_TRUE(group.has("unconfident_branch_rate"));
    EXPECT_TRUE(group.has("pubs_enabled_fraction"));
    EXPECT_TRUE(group.has("p90_misspec_penalty"));
    EXPECT_TRUE(group.has("avg_iq_occupancy"));
    EXPECT_GT(group.get("ipc"), 0.0);
    EXPECT_GE(group.get("p90_misspec_penalty"),
              group.get("p50_misspec_penalty"));
    EXPECT_GT(group.get("avg_iq_occupancy"), 0.0);
}

TEST(Pipeline, RejectsInvalidConfigurations)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    emu::Emulator emu(w.program);
    CoreParams bad = makeConfig(Machine::Pubs);
    bad.iqKind = iq::IqKind::Shifting; // PUBS needs the random queue
    EXPECT_THROW({ Pipeline pipe(bad, emu); }, ConfigError);
}

TEST(Pipeline, NonStallPolicyAvoidsPriorityStalls)
{
    wl::Workload w = wl::makeWorkload("astar_like");
    CoreParams stall = makeConfig(Machine::Pubs);
    CoreParams nonStall = makeConfig(Machine::Pubs);
    nonStall.pubs.stallPolicy = false;
    sim::RunResult a =
        sim::simulate(stall, w.program, 20000, 100000);
    sim::RunResult b =
        sim::simulate(nonStall, w.program, 20000, 100000);
    EXPECT_EQ(b.priorityStallCycles, 0u);
    EXPECT_GT(a.priorityStallCycles, 0u);
}

TEST(Pipeline, JalJrPairsPredictWellThroughRas)
{
    std::string src = R"(
        li r1, 0
        li r2, 300
    loop:
        jal r31, fn
        blt r1, r2, loop
        halt
    fn:
        addi r1, r1, 1
        jr r31
    )";
    PipelineStats stats = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_GT(stats.indirectJumps, 290u);
    // The RAS should make returns nearly perfectly predicted.
    EXPECT_LT(stats.indirectMispredicts, stats.indirectJumps / 10);
}

TEST(Pipeline, DistributedIqRunsAndCommitsCorrectly)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    for (bool usePubs : {false, true}) {
        CoreParams params =
            makeConfig(usePubs ? Machine::Pubs : Machine::Base);
        params.distributedIq = true;
        sim::RunResult r =
            sim::simulate(params, w.program, 20000, 80000);
        EXPECT_EQ(r.instructions, 80000u);
        EXPECT_GT(r.ipc, 0.3) << "usePubs=" << usePubs;
    }
}

TEST(Pipeline, DistributedPubsStillReducesPenalty)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    CoreParams base = makeConfig(Machine::Base);
    base.distributedIq = true;
    CoreParams pubsCfg = makeConfig(Machine::Pubs);
    pubsCfg.distributedIq = true;
    // Small per-queue partitions make the stall policy too blunt for a
    // distributed IQ; the non-stall policy is the sensible port.
    pubsCfg.pubs.stallPolicy = false;
    sim::RunResult b = sim::simulate(base, w.program, 30000, 150000);
    sim::RunResult p = sim::simulate(pubsCfg, w.program, 30000, 150000);
    EXPECT_LT(p.avgMisspecPenalty, b.avgMisspecPenalty);
}

TEST(Pipeline, IdealPrioritySelectBeatsBase)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    CoreParams ideal = makeConfig(Machine::Pubs);
    ideal.pubs.priorityEntries = 0; // no partition: pure select priority
    ideal.idealPrioritySelect = true;
    sim::RunResult base = sim::simulate(makeConfig(Machine::Base),
                                        w.program, 30000, 150000);
    sim::RunResult r = sim::simulate(ideal, w.program, 30000, 150000);
    EXPECT_GT(r.speedupOver(base), 1.03);
    EXPECT_LT(r.avgMisspecPenalty, base.avgMisspecPenalty);
    // No reserved entries: the stall stat must stay zero.
    EXPECT_EQ(r.priorityStallCycles, 0u);
}

TEST(Pipeline, IdealSelectRequiresSliceUnit)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    emu::Emulator emu(w.program);
    CoreParams bad = makeConfig(Machine::Base);
    bad.idealPrioritySelect = true; // without usePubs: invalid
    EXPECT_THROW({ Pipeline pipe(bad, emu); }, ConfigError);
}

TEST(Pipeline, DistributedIqRejectsAgeMatrix)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    emu::Emulator emu(w.program);
    CoreParams bad = makeConfig(Machine::Age);
    bad.distributedIq = true;
    EXPECT_THROW({ Pipeline pipe(bad, emu); }, ConfigError);
}

} // namespace
} // namespace pubs::cpu
