/**
 * @file
 * Event-driven core building blocks: the cycle event wheel (same-cycle
 * FIFO order, wrap-around past the wheel horizon, lazy cancellation),
 * the per-queue ready bitmaps checked against a full-scan reference
 * model on randomized queue histories (including ShiftingQueue
 * compaction), the position-indexed LSQ lookups against the linear-scan
 * originals, the post-commit StoreBuffer against the full-depth
 * reference scan, and the dependent-record slab pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "common/slab.hh"
#include "cpu/event_wheel.hh"
#include "cpu/lsq.hh"
#include "iq/circular_queue.hh"
#include "iq/random_queue.hh"
#include "iq/shifting_queue.hh"

namespace pubs
{
namespace
{

using cpu::EventWheel;
using cpu::Lsq;
using cpu::StoreBuffer;

std::vector<uint32_t>
drainAt(EventWheel &wheel, Cycle now)
{
    std::vector<uint32_t> fired;
    wheel.drain(now, [&](const EventWheel::Event &event) {
        EXPECT_EQ(event.cycle, now);
        fired.push_back(event.a);
    });
    return fired;
}

TEST(EventWheelTest, SameCycleEventsFireInScheduleOrder)
{
    EventWheel wheel(16);
    wheel.schedule(5, EventWheel::Kind::OperandReady, 10, 0, 0);
    wheel.schedule(5, EventWheel::Kind::OperandReady, 11, 0, 0);
    wheel.schedule(5, EventWheel::Kind::LoadRecheck, 12, 0, 0);
    wheel.schedule(6, EventWheel::Kind::OperandReady, 99, 0, 0);
    EXPECT_EQ(wheel.pending(), 4u);
    EXPECT_EQ(wheel.nextEventCycle(), 5u);

    for (Cycle c = 1; c < 5; ++c)
        EXPECT_TRUE(drainAt(wheel, c).empty());
    EXPECT_EQ(drainAt(wheel, 5), (std::vector<uint32_t>{10, 11, 12}));
    EXPECT_EQ(wheel.nextEventCycle(), 6u);
    EXPECT_EQ(drainAt(wheel, 6), (std::vector<uint32_t>{99}));
    EXPECT_TRUE(wheel.empty());
    EXPECT_EQ(wheel.nextEventCycle(), neverCycle);
}

TEST(EventWheelTest, InsertDuringDrainLandsInLaterCycle)
{
    // A visitor scheduling follow-on events (the wakeup cascade) must
    // not see them fire in the same drain.
    EventWheel wheel(8);
    wheel.schedule(3, EventWheel::Kind::OperandReady, 1, 0, 0);
    std::vector<uint32_t> fired;
    wheel.drain(3, [&](const EventWheel::Event &event) {
        fired.push_back(event.a);
        if (event.a == 1)
            wheel.schedule(4, EventWheel::Kind::OperandReady, 2, 0, 3);
    });
    EXPECT_EQ(fired, (std::vector<uint32_t>{1}));
    EXPECT_EQ(drainAt(wheel, 4), (std::vector<uint32_t>{2}));
}

TEST(EventWheelTest, WrapAroundPastTheWheelHorizon)
{
    // Events further out than the bucket count share buckets with
    // nearer cycles; each drain must fire only its own cycle, across
    // several wheel revolutions.
    EventWheel wheel(8); // bucket count 8: cycles 2, 10, 18 collide
    wheel.schedule(2, EventWheel::Kind::OperandReady, 1, 0, 0);
    wheel.schedule(10, EventWheel::Kind::OperandReady, 2, 0, 0);
    wheel.schedule(18, EventWheel::Kind::OperandReady, 3, 0, 0);
    EXPECT_EQ(wheel.nextEventCycle(), 2u);
    EXPECT_EQ(drainAt(wheel, 2), (std::vector<uint32_t>{1}));
    EXPECT_EQ(wheel.nextEventCycle(), 10u);
    EXPECT_EQ(drainAt(wheel, 10), (std::vector<uint32_t>{2}));
    EXPECT_EQ(drainAt(wheel, 18), (std::vector<uint32_t>{3}));
    EXPECT_TRUE(wheel.empty());
}

TEST(EventWheelTest, LazyCancellationDeliversStalePayloads)
{
    // A squash never edits the wheel: cancelled events still fire and
    // the consumer is expected to discard them by sequence number.
    EventWheel wheel(8);
    wheel.schedule(4, EventWheel::Kind::OperandReady, 7, /*seq=*/41, 0);
    wheel.schedule(4, EventWheel::Kind::OperandReady, 7, /*seq=*/52, 0);
    std::vector<uint64_t> seqs;
    wheel.drain(4, [&](const EventWheel::Event &event) {
        seqs.push_back(event.b);
    });
    EXPECT_EQ(seqs, (std::vector<uint64_t>{41, 52}));
}

/**
 * Drive a queue with a random dispatch / remove / markReady /
 * clearReadySlot history and verify the ready bitmap and slot index
 * against a from-scratch reference model after every step.
 */
void
fuzzReadyBitmap(iq::IssueQueue &queue, bool partitioned, uint64_t seed)
{
    Rng rng(seed);
    uint32_t nextClient = 0;
    SeqNum nextSeq = 0;
    std::set<uint32_t> resident;
    std::set<uint32_t> ready; // reference model, by clientId

    auto verify = [&]() {
        const auto &slots = queue.prioritySlots();
        size_t readyBits = 0;
        for (uint32_t s = 0; s < slots.size(); ++s) {
            if (!slots[s].valid) {
                ASSERT_FALSE(queue.readyAt(s))
                    << "free slot " << s << " has a ready bit";
                continue;
            }
            ASSERT_EQ(queue.slotOf(slots[s].clientId), s);
            ASSERT_EQ(queue.readyAt(s),
                      ready.count(slots[s].clientId) != 0)
                << "slot " << s << " client " << slots[s].clientId;
            readyBits += queue.readyAt(s) ? 1 : 0;
        }
        ASSERT_EQ(queue.readyCount(), readyBits);
        ASSERT_EQ(queue.hasReady(), !ready.empty());
        for (uint32_t id : resident)
            ASSERT_NE(queue.slotOf(id), iq::IssueQueue::noSlot);
    };

    for (int step = 0; step < 600; ++step) {
        unsigned action = (unsigned)rng.below(4);
        if (action == 0) {
            bool priority = partitioned && rng.chance(0.3);
            if (queue.canDispatch(priority)) {
                uint32_t id = nextClient++;
                queue.dispatch(id, nextSeq++, priority);
                resident.insert(id);
            }
        } else if (action == 1 && !resident.empty()) {
            auto it = resident.begin();
            std::advance(it, (size_t)rng.below(resident.size()));
            uint32_t id = *it;
            queue.remove(id);
            resident.erase(id);
            ready.erase(id);
            ASSERT_EQ(queue.slotOf(id), iq::IssueQueue::noSlot);
        } else if (action == 2 && !resident.empty()) {
            auto it = resident.begin();
            std::advance(it, (size_t)rng.below(resident.size()));
            queue.markReady(*it);
            ready.insert(*it);
        } else if (action == 3 && !ready.empty()) {
            auto it = ready.begin();
            std::advance(it, (size_t)rng.below(ready.size()));
            uint32_t id = *it;
            queue.clearReadySlot(queue.slotOf(id));
            ready.erase(id);
        }
        verify();
    }
}

TEST(ReadyBitmapTest, RandomQueueMatchesReferenceModel)
{
    for (uint64_t seed = 0; seed < 4; ++seed) {
        iq::RandomQueue queue(24, 4, 0x51c3 + seed);
        fuzzReadyBitmap(queue, true, seed);
    }
}

TEST(ReadyBitmapTest, ShiftingQueueCompactionMovesBits)
{
    for (uint64_t seed = 0; seed < 4; ++seed) {
        iq::ShiftingQueue queue(24);
        fuzzReadyBitmap(queue, false, 100 + seed);
    }
}

TEST(ReadyBitmapTest, CircularQueueMatchesReferenceModel)
{
    for (uint64_t seed = 0; seed < 4; ++seed) {
        iq::CircularQueue queue(24);
        fuzzReadyBitmap(queue, false, 200 + seed);
    }
}

TEST(ReadyBitmapTest, MarkReadyIsIdempotent)
{
    iq::ShiftingQueue queue(8);
    queue.dispatch(5, 0, false);
    queue.markReady(5);
    queue.markReady(5);
    EXPECT_EQ(queue.readyCount(), 1u);
    queue.clearReadySlot(queue.slotOf(5));
    queue.clearReadySlot(queue.slotOf(5));
    EXPECT_EQ(queue.readyCount(), 0u);
}

TEST(LsqIndexedTest, PositionLookupsMatchLinearScans)
{
    // Random program-order histories: pushes of loads and stores with
    // overlapping addresses, out-of-order completions, head commits and
    // tail squashes. Every load's indexed dependence check must agree
    // with the linear scan at every step.
    for (uint64_t seed = 0; seed < 6; ++seed) {
        Rng rng(seed * 977 + 5);
        Lsq lsq(16);
        uint32_t nextId = 1;
        struct Op
        {
            uint32_t id;
            uint64_t pos;
            bool isStore;
            Addr addr;
            unsigned size;
            bool done = false;
        };
        std::vector<Op> live; // program order
        Cycle now = 10;

        for (int step = 0; step < 800; ++step) {
            ++now;
            unsigned action = (unsigned)rng.below(5);
            if (action <= 1 && !lsq.full()) {
                bool isStore = rng.chance(0.5);
                Addr addr = 0x1000 + 8 * rng.below(6);
                unsigned size = rng.chance(0.3) ? 4 : 8;
                uint32_t id = nextId++;
                uint64_t pos = lsq.push(id, isStore, addr, size);
                live.push_back({id, pos, isStore, addr, size});
            } else if (action == 2 && !live.empty()) {
                size_t victim = (size_t)rng.below(live.size());
                if (!live[victim].done) {
                    live[victim].done = true;
                    lsq.markDoneAt(live[victim].pos, live[victim].id, now);
                }
            } else if (action == 3 && !live.empty()) {
                lsq.remove(live.front().id);
                live.erase(live.begin());
            } else if (action == 4 && !live.empty()) {
                lsq.removeYoungest(live.back().id);
                live.pop_back();
            }

            for (const Op &op : live) {
                if (op.isStore)
                    continue;
                Lsq::Dep scan =
                    lsq.olderStoreDependence(op.id, op.addr, op.size);
                Lsq::Dep indexed =
                    lsq.olderStoreDependenceAt(op.pos, op.addr, op.size);
                ASSERT_EQ(scan.kind, indexed.kind)
                    << "seed " << seed << " step " << step;
                if (scan.kind == Lsq::Dep::Forward) {
                    ASSERT_EQ(scan.readyCycle, indexed.readyCycle);
                }
            }
        }
    }
}

TEST(LsqIndexedTest, MarkDoneAtCrossChecksTheId)
{
    Lsq lsq(4);
    uint64_t pos = lsq.push(7, true, 0x100, 8);
    lsq.markDoneAt(pos, 7, 20);
    Lsq::Dep dep = lsq.olderStoreDependenceAt(lsq.push(8, false, 0x100, 8),
                                              0x100, 8);
    EXPECT_EQ(dep.kind, Lsq::Dep::Forward);
    EXPECT_EQ(dep.readyCycle, 20 + Lsq::forwardLatency);
}

TEST(StoreBufferTest, LiveEntryLookupMatchesFullDepthReference)
{
    for (uint64_t seed = 0; seed < 4; ++seed) {
        Rng rng(seed + 31);
        StoreBuffer buffer(8);
        Cycle done = 100;
        for (int step = 0; step < 400; ++step) {
            if (rng.chance(0.4)) {
                buffer.insert(0x2000 + 8 * rng.below(6),
                              rng.chance(0.3) ? 4 : 8, done++);
            }
            Addr addr = 0x2000 + 4 * rng.below(12);
            unsigned size = rng.chance(0.5) ? 4 : 8;
            Cycle a = 0, b = 0;
            bool hitA = buffer.coveringStore(addr, size, a);
            bool hitB = buffer.coveringStoreReference(addr, size, b);
            ASSERT_EQ(hitA, hitB) << "seed " << seed << " step " << step;
            if (hitA) {
                ASSERT_EQ(a, b);
            }
        }
        ASSERT_LE(buffer.liveEntries(), buffer.depth());
    }
}

TEST(StoreBufferTest, YoungestCoveringStoreWins)
{
    StoreBuffer buffer(4);
    buffer.insert(0x100, 8, 10);
    buffer.insert(0x100, 8, 20);
    Cycle done = 0;
    ASSERT_TRUE(buffer.coveringStore(0x100, 8, done));
    EXPECT_EQ(done, 20u);
    // A partially-covering younger store does not satisfy the lookup.
    buffer.insert(0x104, 4, 30);
    ASSERT_TRUE(buffer.coveringStore(0x100, 8, done));
    EXPECT_EQ(done, 20u);
    // Overwrite the whole ring: the oldest entries fall out.
    for (Cycle c = 40; c < 44; ++c)
        buffer.insert(0x200, 8, c);
    EXPECT_FALSE(buffer.coveringStore(0x100, 8, done));
}

TEST(SlabPoolTest, HandlesAreRecycledAndValueInitialised)
{
    struct Node
    {
        int value = -1;
        uint32_t next = SlabPool<Node>::npos;
    };
    SlabPool<Node> pool;
    uint32_t a = pool.alloc();
    uint32_t b = pool.alloc();
    EXPECT_NE(a, b);
    pool.at(a).value = 42;
    pool.free(a);
    EXPECT_EQ(pool.live(), 1u);
    uint32_t c = pool.alloc(); // recycles a
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool.at(c).value, -1) << "recycled node not re-initialised";
    EXPECT_EQ(pool.at(c).next, SlabPool<Node>::npos);
    EXPECT_EQ(pool.live(), 2u);
    EXPECT_EQ(pool.at(b).value, -1);
    // Stable addresses across growth.
    Node *bAddr = &pool.at(b);
    for (int i = 0; i < 500; ++i)
        pool.alloc();
    EXPECT_EQ(bAddr, &pool.at(b));
}

} // namespace
} // namespace pubs
