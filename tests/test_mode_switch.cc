/**
 * @file
 * Mode-switch tests (Section III-B3): interval accounting and the LLC
 * MPKI threshold behaviour.
 */

#include <gtest/gtest.h>

#include "pubs/mode_switch.hh"

namespace pubs::pubs
{
namespace
{

PubsParams
params(uint64_t interval, double threshold)
{
    PubsParams p;
    p.modeInterval = interval;
    p.modeMpkiThreshold = threshold;
    return p;
}

void
runInterval(ModeSwitch &ms, uint64_t commits, uint64_t misses)
{
    // Spread misses across the interval's commits.
    for (uint64_t i = 0; i < commits; ++i) {
        if (misses > 0 && i % (commits / misses ? commits / misses : 1) == 0
            && misses-- > 0) {
            ms.noteLlcMiss();
        }
        ms.noteCommit();
    }
}

TEST(ModeSwitch, StartsEnabled)
{
    ModeSwitch ms(params(1000, 1.0));
    EXPECT_TRUE(ms.pubsEnabled());
    EXPECT_DOUBLE_EQ(ms.enabledFraction(), 1.0);
}

TEST(ModeSwitch, DisablesOnHighMpki)
{
    ModeSwitch ms(params(1000, 1.0));
    // 10 misses per 1000 insts = 10 MPKI > 1.0.
    for (int i = 0; i < 10; ++i)
        ms.noteLlcMiss();
    for (int i = 0; i < 1000; ++i)
        ms.noteCommit();
    EXPECT_FALSE(ms.pubsEnabled());
    EXPECT_EQ(ms.intervals(), 1u);
    EXPECT_EQ(ms.enabledIntervals(), 0u);
}

TEST(ModeSwitch, StaysEnabledOnLowMpki)
{
    ModeSwitch ms(params(1000, 1.0));
    // 0 misses.
    for (int i = 0; i < 1000; ++i)
        ms.noteCommit();
    EXPECT_TRUE(ms.pubsEnabled());
    EXPECT_EQ(ms.enabledIntervals(), 1u);
}

TEST(ModeSwitch, ThresholdIsExclusive)
{
    ModeSwitch ms(params(1000, 1.0));
    // Exactly 1 MPKI is NOT below the threshold: disabled.
    ms.noteLlcMiss();
    for (int i = 0; i < 1000; ++i)
        ms.noteCommit();
    EXPECT_FALSE(ms.pubsEnabled());
}

TEST(ModeSwitch, ReEnablesWhenPressureDrops)
{
    ModeSwitch ms(params(100, 1.0));
    runInterval(ms, 100, 50); // memory-bound interval
    EXPECT_FALSE(ms.pubsEnabled());
    runInterval(ms, 100, 0); // compute interval
    EXPECT_TRUE(ms.pubsEnabled());
    EXPECT_EQ(ms.intervals(), 2u);
    EXPECT_EQ(ms.enabledIntervals(), 1u);
    EXPECT_DOUBLE_EQ(ms.enabledFraction(), 0.5);
}

TEST(ModeSwitch, DisabledConfigurationAlwaysOn)
{
    PubsParams p = params(100, 1.0);
    p.modeSwitch = false;
    ModeSwitch ms(p);
    for (int i = 0; i < 1000; ++i) {
        ms.noteLlcMiss();
        ms.noteCommit();
    }
    EXPECT_TRUE(ms.pubsEnabled());
    EXPECT_EQ(ms.intervals(), 0u); // no observation when switched off
}

TEST(ModeSwitch, MissesResetBetweenIntervals)
{
    ModeSwitch ms(params(1000, 1.0));
    runInterval(ms, 1000, 100);
    EXPECT_FALSE(ms.pubsEnabled());
    // Next interval is clean: the old misses must not carry over.
    runInterval(ms, 1000, 0);
    EXPECT_TRUE(ms.pubsEnabled());
}

} // namespace
} // namespace pubs::pubs
