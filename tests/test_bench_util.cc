/**
 * @file
 * Tests for the benchmark-harness utilities (table formatting, CSV
 * emission, percentage formatting, environment-driven budgets).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/bench_util.hh"
#include "sim/config.hh"

namespace pubs::bench
{
namespace
{

TEST(BenchUtil, PctFormatsRatios)
{
    EXPECT_EQ(pct(1.078), "+7.8%");
    EXPECT_EQ(pct(0.95), "-5.0%");
    EXPECT_EQ(pct(1.0), "+0.0%");
}

TEST(BenchUtil, NumFormatsDigits)
{
    EXPECT_EQ(num(3.14159, 2), "3.14");
    EXPECT_EQ(num(2.0, 0), "2");
}

TEST(BenchUtil, TextTableAligns)
{
    TextTable table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long_name", "2"});
    std::string text = table.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("long_name"), std::string::npos);
    // Every data line must appear after the separator line.
    EXPECT_LT(text.find("----"), text.find("long_name"));
}

TEST(BenchUtil, TextTablePadsShortRows)
{
    TextTable table({"a", "b", "c"});
    table.addRow({"only"});
    EXPECT_EQ(table.rows()[0].size(), 3u);
}

TEST(BenchUtil, CsvEmission)
{
    std::string dir =
        (std::filesystem::temp_directory_path() / "pubs_csv_test")
            .string();
    std::filesystem::create_directories(dir);
    setenv("PUBS_BENCH_CSV", dir.c_str(), 1);

    TextTable table({"x", "y"});
    table.addRow({"1", "2"});
    EXPECT_TRUE(maybeWriteCsv("unit_test", table));

    std::ifstream in(dir + "/unit_test.csv");
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");

    unsetenv("PUBS_BENCH_CSV");
    std::filesystem::remove_all(dir);
}

TEST(BenchUtil, CsvDisabledWithoutEnv)
{
    unsetenv("PUBS_BENCH_CSV");
    TextTable table({"x"});
    EXPECT_FALSE(maybeWriteCsv("unit_test", table));
}

TEST(BenchUtil, BudgetsReadEnvironment)
{
    setenv("PUBS_BENCH_INSTS", "12345", 1);
    setenv("PUBS_BENCH_WARMUP", "678", 1);
    EXPECT_EQ(measureInsts(), 12345u);
    EXPECT_EQ(warmupInsts(), 678u);
    unsetenv("PUBS_BENCH_INSTS");
    unsetenv("PUBS_BENCH_WARMUP");
    EXPECT_EQ(measureInsts(), 1000000u);
    EXPECT_EQ(warmupInsts(), 200000u);
}

TEST(BenchUtil, GeoMeanRatio)
{
    EXPECT_NEAR(geoMeanRatio({1.1, 1.1, 1.1}), 1.1, 1e-12);
}

TEST(BenchUtil, RunSuiteSkipsFailingConfigurations)
{
    // An impossible configuration makes every workload throw
    // ConfigError; the sweep must report each failure and keep going
    // with index-aligned results rather than aborting.
    std::vector<wl::Workload> suite;
    suite.push_back(wl::makeWorkload("hmmer_like"));
    suite.push_back(wl::makeWorkload("sjeng_like"));

    cpu::CoreParams bad = sim::makeConfig(sim::Machine::Pubs);
    bad.iqKind = iq::IqKind::Shifting; // PUBS needs the random queue

    SuiteRun run = runSuite(suite, bad, false);
    ASSERT_EQ(run.results.size(), suite.size());
    ASSERT_EQ(run.errors.size(), suite.size());
    EXPECT_EQ(run.failed(), suite.size());
    EXPECT_FALSE(run.ok(0));
    EXPECT_EQ(run.results[0].workload, "hmmer_like");
    EXPECT_NE(run.errors[1].find("invalid core configuration"),
              std::string::npos);
}

TEST(BenchUtil, SweepRecordsSkippedConfigsInCsv)
{
    // A failed run must leave a machine-readable skip row, not just a
    // stderr warning: skipped.csv gets (workload, machine, kind,
    // failing phase, error) while simspeed.csv only collects the runs
    // that succeeded.
    std::string dir =
        (std::filesystem::temp_directory_path() / "pubs_skip_test")
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    setenv("PUBS_BENCH_CSV", dir.c_str(), 1);

    SweepSpec spec;
    spec.jobs = 1;
    spec.warmup = 500;
    spec.insts = 4000;
    spec.verbose = false;
    spec.add(wl::makeWorkload("hmmer_like"),
             sim::makeConfig(sim::Machine::Base), "base");
    cpu::CoreParams bad = sim::makeConfig(sim::Machine::Pubs);
    bad.iqKind = iq::IqKind::Shifting; // PUBS needs the random queue
    spec.add(wl::makeWorkload("sjeng_like"), bad, "bad");

    SweepResult run = runSweep(spec);
    unsetenv("PUBS_BENCH_CSV");
    EXPECT_EQ(run.failed(), 1u);

    std::ifstream skipped(dir + "/skipped.csv");
    ASSERT_TRUE(skipped.good());
    std::string line;
    std::getline(skipped, line);
    EXPECT_EQ(line, "workload,machine,error_kind,phase,error");
    std::getline(skipped, line);
    EXPECT_NE(line.find("sjeng_like,bad,config,"), std::string::npos);
    EXPECT_NE(line.find("invalid core configuration"),
              std::string::npos);
    EXPECT_FALSE(std::getline(skipped, line)); // exactly one skip row

    // The good run went to simspeed.csv, the skipped one did not.
    std::ifstream speed(dir + "/simspeed.csv");
    ASSERT_TRUE(speed.good());
    std::string all((std::istreambuf_iterator<char>(speed)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("hmmer_like"), std::string::npos);
    EXPECT_EQ(all.find("sjeng_like"), std::string::npos);

    // Pool telemetry lands alongside.
    std::ifstream poolCsv(dir + "/sweep_pool.csv");
    ASSERT_TRUE(poolCsv.good());
    std::getline(poolCsv, line);
    EXPECT_EQ(line,
              "runs,failed,jobs,wall_seconds,busy_seconds,utilization,"
              "launches,crashes,timeouts,stale_kills,corrupt_frames,"
              "retries,skips,journal_served");
    std::getline(poolCsv, line);
    EXPECT_NE(line.find("2,1,1,"), std::string::npos);

    std::filesystem::remove_all(dir);
}

TEST(BenchUtil, RunSuiteMixedFailurePreservesGoodResults)
{
    std::vector<wl::Workload> suite;
    suite.push_back(wl::makeWorkload("hmmer_like"));

    cpu::CoreParams good = sim::makeConfig(sim::Machine::Base);
    ::setenv("PUBS_BENCH_INSTS", "20000", 1);
    ::setenv("PUBS_BENCH_WARMUP", "1000", 1);
    SuiteRun run = runSuite(suite, good, false);
    ::unsetenv("PUBS_BENCH_INSTS");
    ::unsetenv("PUBS_BENCH_WARMUP");
    ASSERT_EQ(run.results.size(), 1u);
    EXPECT_EQ(run.failed(), 0u);
    EXPECT_TRUE(run.ok(0));
    EXPECT_GT(run.results[0].ipc, 0.0);
}

} // namespace
} // namespace pubs::bench
