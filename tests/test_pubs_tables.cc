/**
 * @file
 * Tests for the PUBS hardware structures: key schemes / tag hashing, the
 * generic set-associative table, def_tab, brslice_tab, conf_tab, and the
 * Table III cost model.
 */

#include <gtest/gtest.h>

#include "pubs/brslice_tab.hh"
#include "pubs/conf_tab.hh"
#include "pubs/cost_model.hh"
#include "pubs/def_tab.hh"
#include "pubs/table.hh"

namespace pubs::pubs
{
namespace
{

KeyScheme
defaultScheme()
{
    return {256, 8, false, PubsParams::pcBits};
}

TEST(KeySchemeTest, IndexAndTagPartition)
{
    KeyScheme scheme = defaultScheme();
    EXPECT_EQ(scheme.indexBits(), 8u);
    EXPECT_EQ(scheme.tagBits(), 8u);
    TableKey key = scheme.keyOf(0x1000);
    EXPECT_LT(key.index, 256u);
    EXPECT_LE(key.tag, 0xffu);
}

TEST(KeySchemeTest, SameSetDifferentTagsUsuallyDiffer)
{
    KeyScheme scheme = defaultScheme();
    // PCs that share an index (same low word bits) should mostly get
    // distinct folded tags.
    TableKey a = scheme.keyOf(0x1000);
    int collisions = 0;
    for (int i = 1; i <= 64; ++i) {
        TableKey b = scheme.keyOf(0x1000 + (Pc)i * 256 * instBytes);
        EXPECT_EQ(a.index, b.index);
        collisions += a.tag == b.tag;
    }
    EXPECT_LT(collisions, 8); // 8-bit hash: expect ~1/256 collisions
}

TEST(KeySchemeTest, FullTagsAreExact)
{
    KeyScheme scheme{256, 8, true, PubsParams::pcBits};
    EXPECT_EQ(scheme.tagBits(), PubsParams::pcBits - 8);
    TableKey a = scheme.keyOf(0x1000);
    TableKey b = scheme.keyOf(0x1000 + 256 * instBytes);
    EXPECT_EQ(a.index, b.index);
    EXPECT_NE(a.tag, b.tag);
}

TEST(KeySchemeTest, TaglessHasZeroTagBits)
{
    KeyScheme scheme{256, 0, false, PubsParams::pcBits};
    EXPECT_EQ(scheme.tagBits(), 0u);
    EXPECT_EQ(scheme.keyOf(0x99999).tag, 0u);
}

TEST(HashedTagTableTest, LookupMissesThenHits)
{
    KeyScheme scheme = defaultScheme();
    HashedTagTable<int> table(256, 4, scheme);
    TableKey key = scheme.keyOf(0x1000);
    EXPECT_EQ(table.lookup(key), nullptr);
    bool allocated = false;
    table.lookupOrAllocate(key, allocated) = 42;
    EXPECT_TRUE(allocated);
    int *hit = table.lookup(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(*hit, 42);
    table.lookupOrAllocate(key, allocated);
    EXPECT_FALSE(allocated);
}

TEST(HashedTagTableTest, LruEvictionWithinSet)
{
    KeyScheme scheme{4, 8, false, PubsParams::pcBits};
    HashedTagTable<int> table(4, 2, scheme);
    // Three keys in the same set with (almost surely) distinct tags.
    TableKey k1 = scheme.keyOf(0x1000);
    TableKey k2 = scheme.keyOf(0x1000 + 4 * instBytes * 7);
    TableKey k3 = scheme.keyOf(0x1000 + 4 * instBytes * 21);
    k2.index = k1.index;
    k3.index = k1.index;
    ASSERT_NE(k1.tag, k2.tag);
    ASSERT_NE(k1.tag, k3.tag);
    ASSERT_NE(k2.tag, k3.tag);

    bool allocated;
    table.lookupOrAllocate(k1, allocated) = 1;
    table.lookupOrAllocate(k2, allocated) = 2;
    table.lookup(k1); // k2 is now LRU
    table.lookupOrAllocate(k3, allocated) = 3;
    EXPECT_TRUE(allocated);
    EXPECT_NE(table.lookup(k1), nullptr);
    EXPECT_EQ(table.lookup(k2), nullptr);
    EXPECT_NE(table.lookup(k3), nullptr);
}

TEST(HashedTagTableTest, ClearInvalidatesEverything)
{
    KeyScheme scheme = defaultScheme();
    HashedTagTable<int> table(256, 4, scheme);
    bool allocated;
    table.lookupOrAllocate(scheme.keyOf(0x1000), allocated) = 1;
    EXPECT_EQ(table.validEntries(), 1u);
    table.clear();
    EXPECT_EQ(table.validEntries(), 0u);
    EXPECT_EQ(table.lookup(scheme.keyOf(0x1000)), nullptr);
}

TEST(DefTabTest, TracksMostRecentProducer)
{
    KeyScheme scheme = defaultScheme();
    DefTab def(scheme);
    TableKey out;
    EXPECT_FALSE(def.producerOf(5, out));
    TableKey p1 = scheme.keyOf(0x1000);
    TableKey p2 = scheme.keyOf(0x2000);
    def.define(5, p1);
    ASSERT_TRUE(def.producerOf(5, out));
    EXPECT_EQ(out, p1);
    def.define(5, p2); // overwritten by a newer producer
    ASSERT_TRUE(def.producerOf(5, out));
    EXPECT_EQ(out, p2);
}

TEST(DefTabTest, CoversUnifiedRegisterSpace)
{
    KeyScheme scheme = defaultScheme();
    DefTab def(scheme);
    TableKey key = scheme.keyOf(0x1000);
    def.define(0, key);
    def.define(numLogicalRegs - 1, key);
    TableKey out;
    EXPECT_TRUE(def.producerOf(numLogicalRegs - 1, out));
    def.clear();
    EXPECT_FALSE(def.producerOf(0, out));
}

TEST(BrsliceTabTest, LinkAndLookup)
{
    PubsParams params;
    BrsliceTab tab(params);
    TableKey inst = tab.keyOf(0x1000);
    TableKey confPtr{7, 3};
    TableKey out;
    EXPECT_FALSE(tab.lookup(inst, out));
    tab.link(inst, confPtr);
    ASSERT_TRUE(tab.lookup(inst, out));
    EXPECT_EQ(out, confPtr);
    // Re-linking to a different branch overwrites the pointer.
    TableKey other{9, 1};
    tab.link(inst, other);
    ASSERT_TRUE(tab.lookup(inst, out));
    EXPECT_EQ(out, other);
}

TEST(ConfTabTest, PaperAllocationSemantics)
{
    PubsParams params;
    params.confCounterBits = 3; // max = 7
    ConfTab tab(params);
    TableKey key = tab.keyOf(0x1000);

    // Unknown branches are treated as confident (Section III-A3).
    EXPECT_FALSE(tab.unconfident(key));

    // First outcome correct: counter initialised to max => confident.
    tab.update(key, true);
    EXPECT_FALSE(tab.unconfident(key));

    // A misprediction resets to 0 => unconfident until re-saturated.
    tab.update(key, false);
    EXPECT_TRUE(tab.unconfident(key));
    for (int i = 0; i < 6; ++i)
        tab.update(key, true);
    EXPECT_TRUE(tab.unconfident(key)); // 6 < 7
    tab.update(key, true);
    EXPECT_FALSE(tab.unconfident(key));
}

TEST(ConfTabTest, FirstOutcomeIncorrectStartsUnconfident)
{
    PubsParams params;
    ConfTab tab(params);
    TableKey key = tab.keyOf(0x2000);
    tab.update(key, false);
    EXPECT_TRUE(tab.unconfident(key));
    uint32_t value = 99;
    ASSERT_TRUE(tab.counterValue(key, value));
    EXPECT_EQ(value, 0u);
}

TEST(ConfTabTest, UpDownShapeDecrementsInsteadOfResetting)
{
    PubsParams params;
    params.confCounterBits = 3; // max = 7
    params.counterShape = CounterShape::UpDown;
    ConfTab tab(params);
    TableKey key = tab.keyOf(0x1000);
    tab.update(key, true); // allocate at max
    tab.update(key, false);
    uint32_t value = 0;
    ASSERT_TRUE(tab.counterValue(key, value));
    EXPECT_EQ(value, 6u); // decremented, not reset
    EXPECT_TRUE(tab.unconfident(key));
    tab.update(key, true);
    EXPECT_FALSE(tab.unconfident(key)); // recovers in one step
}

TEST(ConfTabTest, UpDownSaturatesAtZero)
{
    PubsParams params;
    params.confCounterBits = 2;
    params.counterShape = CounterShape::UpDown;
    ConfTab tab(params);
    TableKey key = tab.keyOf(0x1000);
    tab.update(key, false); // allocate at 0
    tab.update(key, false);
    uint32_t value = 99;
    ASSERT_TRUE(tab.counterValue(key, value));
    EXPECT_EQ(value, 0u);
}

TEST(ConfTabTest, HashAliasingSharesCounters)
{
    // Two branches with colliding (index, hashed tag) share one counter
    // — the cost/accuracy trade of Section IV. Force a collision by
    // using the tagless configuration.
    PubsParams params;
    params.tagless = true;
    ConfTab tab(params);
    Pc a = 0x1000;
    Pc b = 0x1000 + (Pc)params.confSets * instBytes; // same set
    tab.update(tab.keyOf(a), false);
    EXPECT_TRUE(tab.unconfident(tab.keyOf(b)));
}

TEST(CostModelTest, DefaultConfigurationIsAboutFourKB)
{
    PubsParams params;
    CostBreakdown cost = computeCost(params);
    // Paper Table III: total 4.0 KB.
    EXPECT_NEAR(cost.totalKB(), 4.0, 0.25);
    EXPECT_GT(cost.brsliceTabKB(), cost.confTabKB());
    EXPECT_GT(cost.confTabKB(), cost.defTabKB());
}

TEST(CostModelTest, FullTagsCostFarMore)
{
    PubsParams hashed;
    PubsParams full;
    full.fullTags = true;
    // Section IV: un-hashed tags are "a large cost overhead".
    EXPECT_GT(computeCost(full).totalKB(),
              3.0 * computeCost(hashed).totalKB());
}

TEST(CostModelTest, TaglessIsCheapest)
{
    PubsParams hashed;
    PubsParams tagless;
    tagless.tagless = true;
    EXPECT_LT(computeCost(tagless).totalKB(),
              computeCost(hashed).totalKB());
}

TEST(CostModelTest, CounterBitsScaleConfTab)
{
    PubsParams narrow;
    narrow.confCounterBits = 2;
    PubsParams wide;
    wide.confCounterBits = 8;
    EXPECT_GT(computeCost(wide).confTabBits,
              computeCost(narrow).confTabBits);
    EXPECT_EQ(computeCost(wide).brsliceTabBits,
              computeCost(narrow).brsliceTabBits);
}

TEST(CostModelTest, FormatMentionsAllTables)
{
    std::string text = formatCostTable(PubsParams{});
    EXPECT_NE(text.find("def_tab"), std::string::npos);
    EXPECT_NE(text.find("brslice_tab"), std::string::npos);
    EXPECT_NE(text.find("conf_tab"), std::string::npos);
}

} // namespace
} // namespace pubs::pubs
