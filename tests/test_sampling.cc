/**
 * @file
 * Sampled-simulation tests: the confidence-interval estimator against
 * closed-form values (including the degenerate single-window and
 * zero-variance cases), plan validation, and determinism of the sampled
 * driver — repeated runs and checkpoint-cache-served runs must stitch
 * bit-identical results.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/config.hh"
#include "sim/sampling.hh"
#include "workloads/suite.hh"

namespace pubs
{
namespace
{

TEST(MeanCi, MatchesClosedFormSmallSample)
{
    // xs = {1, 2, 3, 4}: mean 2.5, s^2 = 5/3, se = sqrt(5/12),
    // t_{0.975,3} = 3.182.
    sim::MeanCi ci = sim::meanCi({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(ci.n, 4u);
    EXPECT_DOUBLE_EQ(ci.mean, 2.5);
    EXPECT_NEAR(ci.halfWidth, 3.182 * std::sqrt(5.0 / 12.0), 1e-12);
}

TEST(MeanCi, MatchesClosedFormTwoSamples)
{
    // xs = {10, 20}: mean 15, s^2 = 50, se = 5, t_{0.975,1} = 12.706.
    sim::MeanCi ci = sim::meanCi({10.0, 20.0});
    EXPECT_EQ(ci.n, 2u);
    EXPECT_DOUBLE_EQ(ci.mean, 15.0);
    EXPECT_NEAR(ci.halfWidth, 12.706 * 5.0, 1e-9);
}

TEST(MeanCi, LargeSampleUsesNormalQuantile)
{
    // 40 alternating values 0/2: mean 1, s^2 = 40/39 (unbiased),
    // df = 39 > 30 so the quantile is 1.96.
    std::vector<double> xs(40);
    for (size_t i = 0; i < xs.size(); ++i)
        xs[i] = (i % 2) ? 2.0 : 0.0;
    sim::MeanCi ci = sim::meanCi(xs);
    EXPECT_DOUBLE_EQ(ci.mean, 1.0);
    EXPECT_NEAR(ci.halfWidth, 1.96 * std::sqrt((40.0 / 39.0) / 40.0),
                1e-12);
}

TEST(MeanCi, SingleWindowCarriesNoSpread)
{
    sim::MeanCi ci = sim::meanCi({3.25});
    EXPECT_EQ(ci.n, 1u);
    EXPECT_DOUBLE_EQ(ci.mean, 3.25);
    EXPECT_EQ(ci.halfWidth, 0.0);
}

TEST(MeanCi, ZeroVarianceIsExactlyZero)
{
    sim::MeanCi ci = sim::meanCi({2.0, 2.0, 2.0, 2.0, 2.0});
    EXPECT_DOUBLE_EQ(ci.mean, 2.0);
    EXPECT_EQ(ci.halfWidth, 0.0); // exactly, not merely small
}

TEST(MeanCi, EmptyIsAllZero)
{
    sim::MeanCi ci = sim::meanCi({});
    EXPECT_EQ(ci.n, 0u);
    EXPECT_EQ(ci.mean, 0.0);
    EXPECT_EQ(ci.halfWidth, 0.0);
}

TEST(SamplePlan, ValidationRejectsDegeneratePlans)
{
    sim::SamplePlan disabled;
    disabled.validate(); // windows == 0 is fine: sampling off

    sim::SamplePlan noMeasure;
    noMeasure.windows = 4;
    noMeasure.periodInsts = 1000;
    EXPECT_THROW(noMeasure.validate(), ConfigError);

    sim::SamplePlan noPeriod;
    noPeriod.windows = 4;
    noPeriod.measureInsts = 1000;
    EXPECT_THROW(noPeriod.validate(), ConfigError);

    sim::SamplePlan oneWindow; // a single window needs no period
    oneWindow.windows = 1;
    oneWindow.measureInsts = 1000;
    oneWindow.validate();
}

sim::SamplePlan
smallPlan()
{
    sim::SamplePlan plan;
    plan.windows = 4;
    plan.warmupInsts = 500;
    plan.measureInsts = 2000;
    plan.periodInsts = 6000;
    return plan;
}

TEST(SimulateSampled, ResultIsStitchedAndAnnotated)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    sim::SamplePlan plan = smallPlan();

    sim::RunResult r =
        sim::simulateSampled(params, w.program, plan, nullptr, "pubs");
    EXPECT_TRUE(r.sampled);
    EXPECT_EQ(r.windows, plan.windows);
    EXPECT_EQ(r.skippedInsts,
              (uint64_t)(plan.windows - 1) * plan.periodInsts);
    // Pooled counters cover every measured window.
    EXPECT_EQ(r.instructions,
              (uint64_t)plan.windows * plan.measureInsts);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GE(r.ipcCi95, 0.0);
}

TEST(SimulateSampled, RepeatedRunsAreBitIdentical)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    sim::SamplePlan plan = smallPlan();

    sim::RunResult a =
        sim::simulateSampled(params, w.program, plan, nullptr, "pubs");
    sim::RunResult b =
        sim::simulateSampled(params, w.program, plan, nullptr, "pubs");
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.branchMpki, b.branchMpki);
    EXPECT_EQ(a.llcMpki, b.llcMpki);
    EXPECT_EQ(a.ipcCi95, b.ipcCi95);
    EXPECT_EQ(a.branchMpkiCi95, b.branchMpkiCi95);
    EXPECT_EQ(a.llcMpkiCi95, b.llcMpkiCi95);
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.skippedInsts, b.skippedInsts);
}

TEST(SimulateSampled, CheckpointCacheDoesNotChangeResults)
{
    std::string dir = (std::filesystem::temp_directory_path() /
                       "pubs_test_sampling_cache")
                          .string();
    std::filesystem::remove_all(dir);

    wl::Workload w = wl::makeWorkload("mcf_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    sim::SamplePlan plan = smallPlan();

    sim::RunResult bare =
        sim::simulateSampled(params, w.program, plan, nullptr, "pubs");
    sim::CheckpointStore store(dir);
    // First cached run populates the store, second is served from it;
    // all three must agree bit-for-bit.
    sim::RunResult cold =
        sim::simulateSampled(params, w.program, plan, &store, "pubs");
    EXPECT_FALSE(std::filesystem::is_empty(dir));
    sim::RunResult warm =
        sim::simulateSampled(params, w.program, plan, &store, "pubs");

    for (const sim::RunResult *r : {&cold, &warm}) {
        EXPECT_EQ(r->instructions, bare.instructions);
        EXPECT_EQ(r->cycles, bare.cycles);
        EXPECT_EQ(r->ipc, bare.ipc);
        EXPECT_EQ(r->branchMpki, bare.branchMpki);
        EXPECT_EQ(r->llcMpki, bare.llcMpki);
        EXPECT_EQ(r->ipcCi95, bare.ipcCi95);
        EXPECT_EQ(r->windows, bare.windows);
    }
    std::filesystem::remove_all(dir);
}

TEST(SimulateSampled, SingleWindowFromResetMatchesStraightRun)
{
    // One window starting at reset is exactly a straight run with the
    // same budgets, so the stitched result must reproduce it.
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Base);
    sim::SamplePlan plan;
    plan.windows = 1;
    plan.warmupInsts = 1000;
    plan.measureInsts = 5000;

    sim::RunResult sampled =
        sim::simulateSampled(params, w.program, plan, nullptr, "base");
    sim::RunResult straight =
        sim::simulate(params, w.program, 1000, 5000);
    EXPECT_EQ(sampled.instructions, straight.instructions);
    EXPECT_EQ(sampled.cycles, straight.cycles);
    EXPECT_EQ(sampled.ipc, straight.ipc);
    EXPECT_EQ(sampled.branchMpki, straight.branchMpki);
    EXPECT_EQ(sampled.llcMpki, straight.llcMpki);
    EXPECT_EQ(sampled.ipcCi95, 0.0); // no spread from one window
}

} // namespace
} // namespace pubs
