/**
 * @file
 * Observability-plane tests: the strict RFC 8259 JSON referee, the
 * hierarchical host-phase profiler (nesting, self-time, trace export),
 * the progress sample codec and its frame-CRC protection, the
 * incremental frame splitter, the broker Meter, the dashboard renderer
 * (data block strict-parses back out of the HTML), the KIPS gate, and
 * the plane's byte-exactness contract: enabling profiler + progress
 * must not change a sweep's statsJson by one byte.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/atomic_file.hh"
#include "common/bench_util.hh"
#include "common/json.hh"
#include "common/kips_gate.hh"
#include "common/profiler.hh"
#include "common/progress.hh"
#include "common/report.hh"
#include "common/stats.hh"
#include "common/subprocess.hh"
#include "sim/config.hh"
#include "workloads/suite.hh"

namespace pubs
{
namespace
{

// --- strict JSON parser ----------------------------------------------

TEST(StrictJson, AcceptsBasicDocuments)
{
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse("{\"a\": [1, 2.5, -3e2], \"b\": null, "
                            "\"c\": \"x\\n\\u0041\", \"d\": true}",
                            v, error))
        << error;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.find("a")->array()[1].number(), 2.5);
    EXPECT_TRUE(v.find("b")->isNull());
    EXPECT_EQ(v.find("c")->str(), "x\nA");
    EXPECT_TRUE(v.find("d")->boolean());
}

TEST(StrictJson, RejectsMalformedDocuments)
{
    std::string error;
    // Each entry violates the RFC (or our dup-key tightening).
    const char *bad[] = {
        "",
        "{",
        "{\"a\": 1,}",          // trailing comma
        "{\"a\": 1} x",         // trailing input
        "{'a': 1}",             // single quotes
        "{\"a\": NaN}",         // NaN literal
        "{\"a\": Infinity}",    // Infinity literal
        "{\"a\": 01}",          // leading zero
        "{\"a\": .5}",          // bare fraction
        "{\"a\": 1, \"a\": 2}", // duplicate key
        "{\"a\": \"\x01\"}",    // raw control char in string
        "{\"a\": \"\xff\"}",    // invalid UTF-8
        "// comment\n{}",
    };
    for (const char *doc : bad)
        EXPECT_FALSE(json::validate(doc, error)) << doc;
}

TEST(StrictJson, ErrorsCarryLineAndColumn)
{
    std::string error;
    ASSERT_FALSE(json::validate("{\n  \"a\": 1,\n}", error));
    EXPECT_NE(error.find("3:"), std::string::npos) << error;
}

// --- profiler --------------------------------------------------------

TEST(Profiler, NestedScopesAggregateSelfTime)
{
    prof::reset();
    prof::enable();
    {
        prof::Scope outer("test/outer");
        for (int i = 0; i < 3; ++i) {
            prof::Scope inner("test/inner");
            volatile uint64_t spin = 0;
            for (int j = 0; j < 50000; ++j)
                spin += (uint64_t)j;
        }
    }
    prof::disable();

    const std::vector<prof::PhaseStats> phases = prof::aggregate();
    const prof::PhaseStats *outer = nullptr, *inner = nullptr;
    for (const auto &p : phases) {
        if (p.path == "test/outer")
            outer = &p;
        if (p.path == "test/outer/test/inner")
            inner = &p;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 3u);
    // The child's time is excluded from the parent's self time.
    EXPECT_GE(outer->totalSeconds, inner->totalSeconds);
    EXPECT_LE(outer->selfSeconds,
              outer->totalSeconds - inner->totalSeconds + 1e-9);
    EXPECT_GT(inner->maxSeconds, 0.0);
    prof::reset();
}

TEST(Profiler, DisabledScopesRecordNothing)
{
    prof::reset();
    ASSERT_FALSE(prof::enabled());
    {
        prof::Scope scope("test/should_not_exist");
    }
    for (const auto &p : prof::aggregate())
        EXPECT_EQ(p.path.find("should_not_exist"), std::string::npos);
}

TEST(Profiler, TraceEventsJsonIsStrictAndRoundTrips)
{
    prof::reset();
    prof::enable();
    {
        prof::Scope a("test/alpha");
        prof::Scope b("test/beta");
    }
    prof::disable();

    const std::string doc = prof::traceEventsJson();
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(doc, v, error)) << error;
    const json::Value *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_GE(events->array().size(), 2u);
    bool sawAlpha = false;
    for (const json::Value &event : events->array()) {
        EXPECT_EQ(event.stringOr("ph", ""), "X");
        EXPECT_GE(event.numberOr("dur", -1.0), 0.0);
        if (event.stringOr("name", "") == "test/alpha")
            sawAlpha = true;
    }
    EXPECT_TRUE(sawAlpha);
    prof::reset();
}

TEST(Profiler, FillRegistryPublishesPhases)
{
    prof::reset();
    prof::enable();
    {
        prof::Scope scope("test/registry_phase");
    }
    prof::disable();
    StatRegistry registry;
    prof::fillRegistry(registry);
    const std::string doc = registry.renderJson();
    EXPECT_NE(doc.find("registry_phase"), std::string::npos);
    std::string error;
    EXPECT_TRUE(json::validate(doc, error)) << error;
    prof::reset();
}

// --- progress sample codec + frames ----------------------------------

progress::Sample
sampleFixture()
{
    progress::Sample s;
    s.slot = 7;
    s.insts = 123456789;
    s.totalInsts = 1200000;
    s.kips = 2841.5;
    s.rssBytes = 96 << 20;
    s.label = "mcf_like";
    return s;
}

TEST(ProgressCodec, EncodeDecodeRoundTrip)
{
    const progress::Sample in = sampleFixture();
    const std::string payload = progress::encodeSample(in);
    ASSERT_TRUE(progress::isSamplePayload(payload));

    progress::Sample out;
    ASSERT_TRUE(progress::decodeSample(payload, out));
    EXPECT_EQ(out.slot, in.slot);
    EXPECT_EQ(out.insts, in.insts);
    EXPECT_EQ(out.totalInsts, in.totalInsts);
    EXPECT_DOUBLE_EQ(out.kips, in.kips);
    EXPECT_EQ(out.rssBytes, in.rssBytes);
    EXPECT_EQ(out.label, in.label);
}

TEST(ProgressCodec, RejectsTruncatedAndCorruptPayloads)
{
    const std::string payload = progress::encodeSample(sampleFixture());
    progress::Sample out;
    EXPECT_FALSE(progress::decodeSample("", out));
    EXPECT_FALSE(progress::decodeSample("PBPG", out));
    EXPECT_FALSE(
        progress::decodeSample(payload.substr(0, payload.size() - 1), out));
    EXPECT_FALSE(progress::decodeSample(payload + "x", out));
    std::string badMagic = payload;
    badMagic[0] ^= 0x5a;
    EXPECT_FALSE(progress::decodeSample(badMagic, out));
}

TEST(ProgressCodec, FrameCrcCatchesCorruptedSample)
{
    // The sample rides inside a CRC-checked pipe frame; flip a payload
    // byte after encoding and the *frame* layer must reject it before
    // the sample codec ever sees it.
    const std::string payload =
        "P" + progress::encodeSample(sampleFixture());
    std::string framed = proc::encodeFrame(payload);
    framed[proc::frameHeaderBytes + 4] ^= 0x01;
    std::string decoded;
    EXPECT_EQ(proc::decodeFrame(framed, decoded),
              proc::FrameStatus::Corrupt);
}

TEST(FrameSplitter, ConsumesMultipleFramesFromOneBuffer)
{
    std::string buffer = proc::encodeFrame("P one") +
                         proc::encodeFrame("P two") +
                         proc::encodeFrame("R result");
    std::string payload;
    ASSERT_EQ(proc::nextFrame(buffer, payload), proc::FrameStatus::Ok);
    EXPECT_EQ(payload, "P one");
    ASSERT_EQ(proc::nextFrame(buffer, payload), proc::FrameStatus::Ok);
    EXPECT_EQ(payload, "P two");
    ASSERT_EQ(proc::nextFrame(buffer, payload), proc::FrameStatus::Ok);
    EXPECT_EQ(payload, "R result");
    EXPECT_TRUE(buffer.empty());
    EXPECT_EQ(proc::nextFrame(buffer, payload),
              proc::FrameStatus::Truncated);
}

TEST(FrameSplitter, PartialFrameWaitsForMoreBytes)
{
    const std::string whole = proc::encodeFrame("partial test");
    std::string buffer = whole.substr(0, whole.size() - 3);
    std::string payload;
    EXPECT_EQ(proc::nextFrame(buffer, payload),
              proc::FrameStatus::Truncated);
    buffer += whole.substr(whole.size() - 3);
    ASSERT_EQ(proc::nextFrame(buffer, payload), proc::FrameStatus::Ok);
    EXPECT_EQ(payload, "partial test");
}

TEST(ProgressSink, CallbackSinkDeliversTaskSamples)
{
    std::vector<progress::Sample> seen;
    progress::setCallbackSink(
        [&](const progress::Sample &s) { seen.push_back(s); }, 0);
    progress::beginTask(3, "unit_workload", 1000);
    progress::tick(250);
    progress::phaseDone();
    progress::tick(500);
    progress::endTask();
    progress::clearSink();

    ASSERT_GE(seen.size(), 2u);
    const progress::Sample &last = seen.back();
    EXPECT_EQ(last.slot, 3u);
    EXPECT_EQ(last.label, "unit_workload");
    EXPECT_EQ(last.totalInsts, 1000u);
    EXPECT_EQ(last.insts, 750u); // 250 folded by phaseDone + 500
}

TEST(ProgressMeter, JsonIsStrictAndTracksRuns)
{
    progress::Meter::Config config;
    config.totalRuns = 4;
    config.quiet = true;
    progress::Meter meter(config);

    progress::Sample s = sampleFixture();
    s.slot = 0;
    meter.update(s);
    meter.runFinished(0, true);
    meter.runFinished(1, false);
    meter.setFarmTotals(2, 1, 1);
    meter.finish();

    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(meter.json(), v, error)) << error;
    EXPECT_EQ(v.numberOr("total_runs", 0), 4.0);
    EXPECT_EQ(v.numberOr("done", 0), 2.0);
    EXPECT_EQ(v.numberOr("failed", 0), 1.0);
    EXPECT_EQ(v.numberOr("retries", 0), 2.0);
    EXPECT_EQ(v.numberOr("timeouts", 0), 1.0);
    EXPECT_EQ(v.numberOr("stale_kills", 0), 1.0);
}

// --- dashboard -------------------------------------------------------

/** Pull the embedded data document back out of the rendered page. */
std::string
extractDataBlock(const std::string &html)
{
    const std::string open = "type=\"application/json\">";
    const std::string close = "</script>";
    size_t begin = html.find(open);
    if (begin == std::string::npos)
        return "";
    begin += open.size();
    size_t end = html.find(close, begin);
    if (end == std::string::npos)
        return "";
    return html.substr(begin, end - begin);
}

TEST(Dashboard, DataBlockStrictParsesBackOutOfHtml)
{
    bench::ReportBuilder report;
    report.setTitle("golden <title> & escapes");
    bench::ReportBuilder::Run run;
    run.workload = "sjeng_like";
    run.machine = "base";
    run.ok = true;
    run.instructions = 1000000;
    run.cycles = 749586;
    run.ipc = 1.334;
    run.kips = 2198.4;
    run.branchMpki = 11.2;
    run.llcMpki = 0.4;
    run.unconfidentRate = 0.21;
    report.addRun(run);
    run.machine = "pubs";
    run.ipc = 1.580;
    report.addRun(run);
    // A workload name with a script terminator must not break the page.
    run.workload = "evil</script>name";
    report.addRun(run);
    report.setStatsJson("{\"pubs\": {\"telemetry\": "
                        "{\"slice_coverage\": 0.82, "
                        "\"slice_accuracy\": 0.91}}}");

    const std::string html = report.html();
    EXPECT_EQ(html.find("https://"), std::string::npos)
        << "dashboard must be self-contained (no CDN)";
    EXPECT_EQ(html.find("http://"), std::string::npos);

    const std::string data = extractDataBlock(html);
    ASSERT_FALSE(data.empty());
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(data, v, error)) << error;
    EXPECT_EQ(v.stringOr("title", ""), "golden <title> & escapes");
    ASSERT_NE(v.find("runs"), nullptr);
    EXPECT_EQ(v.find("runs")->array().size(), 3u);
    EXPECT_EQ(v.find("runs")->array()[2].stringOr("workload", ""),
              "evil</script>name");
    const json::Value *coverage =
        v.find("stats")->find("pubs", "telemetry");
    ASSERT_NE(coverage, nullptr);
    EXPECT_DOUBLE_EQ(coverage->numberOr("slice_coverage", 0), 0.82);
}

TEST(Dashboard, InvalidStatsJsonIsDroppedNotEmbedded)
{
    bench::ReportBuilder report;
    report.setStatsJson("{broken");
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(report.dataJson(), v, error)) << error;
    EXPECT_EQ(v.find("stats"), nullptr);
}

TEST(Dashboard, WriteHtmlIsAtomicAndComplete)
{
    const std::string dir = "obs_dash_test_dir";
    std::filesystem::create_directory(dir);
    bench::ReportBuilder report;
    report.setTitle("write test");
    const std::string path = dir + "/dashboard.html";
    ASSERT_EQ(report.writeHtml(path), "");
    std::ifstream in(path);
    std::string html((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("</html>"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// --- KIPS gate -------------------------------------------------------

std::string
hostspeedDoc(double scale)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"bench\": \"t\", \"runs\": ["
        "{\"workload\": \"a\", \"machine\": \"base\", \"kips\": %.2f},"
        "{\"workload\": \"b\", \"machine\": \"base\", \"kips\": %.2f},"
        "{\"workload\": \"c\", \"machine\": \"pubs\", \"kips\": %.2f}"
        "], \"geomean_kips\": 0}",
        2000.0 * scale, 3000.0 * scale, 4000.0 * scale);
    return buf;
}

TEST(KipsGate, SelfReplayPasses)
{
    const std::string doc = hostspeedDoc(1.0);
    bench::GateResult r = bench::runKipsGate(doc, doc);
    EXPECT_EQ(r.error, "");
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.regressions(), 0u);
    EXPECT_FALSE(r.geomeanRegressed);
    EXPECT_NEAR(r.geomeanRatio, 1.0, 1e-9);
}

TEST(KipsGate, Synthetic20PercentRegressionFails)
{
    bench::GateResult r =
        bench::runKipsGate(hostspeedDoc(1.0), hostspeedDoc(0.8));
    EXPECT_EQ(r.error, "");
    EXPECT_FALSE(r.pass);
    EXPECT_EQ(r.regressions(), 3u); // 20% > 15% per-workload tolerance
    EXPECT_TRUE(r.geomeanRegressed); // 20% > 7% geomean tolerance
    EXPECT_NE(r.report().find("FAIL"), std::string::npos);
}

TEST(KipsGate, WithinToleranceNoisePasses)
{
    // 10% down: within the 15% per-workload band but beyond the 7%
    // geomean band -> geomean alone must catch it.
    bench::GateResult r =
        bench::runKipsGate(hostspeedDoc(1.0), hostspeedDoc(0.90));
    EXPECT_EQ(r.regressions(), 0u);
    EXPECT_TRUE(r.geomeanRegressed);
    EXPECT_FALSE(r.pass);

    // 5% down: inside both bands.
    r = bench::runKipsGate(hostspeedDoc(1.0), hostspeedDoc(0.95));
    EXPECT_TRUE(r.pass);

    // Faster never fails.
    r = bench::runKipsGate(hostspeedDoc(1.0), hostspeedDoc(1.4));
    EXPECT_TRUE(r.pass);
}

TEST(KipsGate, MissingRunAndBadInputsAreErrors)
{
    bench::GateResult r = bench::runKipsGate(hostspeedDoc(1.0),
                                             "{\"runs\": ["
                                             "{\"workload\": \"a\", "
                                             "\"machine\": \"base\", "
                                             "\"kips\": 2000}]}");
    EXPECT_EQ(r.error, "");
    EXPECT_FALSE(r.pass);
    EXPECT_EQ(r.missing.size(), 2u);

    r = bench::runKipsGate("{nonsense", hostspeedDoc(1.0));
    EXPECT_NE(r.error, "");
    r = bench::runKipsGate(hostspeedDoc(1.0), "{\"runs\": []}");
    EXPECT_NE(r.error, "");
}

TEST(KipsGate, LedgerAppendsRowsWithHeaderOnce)
{
    const std::string dir = "obs_ledger_test_dir";
    std::filesystem::create_directory(dir);
    const std::string path = dir + "/BENCH_LEDGER.md";
    bench::GateResult pass =
        bench::runKipsGate(hostspeedDoc(1.0), hostspeedDoc(1.0));
    bench::GateResult fail =
        bench::runKipsGate(hostspeedDoc(1.0), hostspeedDoc(0.8));
    ASSERT_EQ(bench::appendLedger(path, pass, "run-1"), "");
    ASSERT_EQ(bench::appendLedger(path, fail, "run-2"), "");
    std::string text;
    ASSERT_TRUE(readWholeFile(path, text));
    EXPECT_EQ(text.find("# Host-speed ledger"), 0u);
    EXPECT_EQ(text.find("| run |"), text.rfind("| run |")); // one header
    EXPECT_NE(text.find("| run-1 |"), std::string::npos);
    EXPECT_NE(text.find("| run-2 |"), std::string::npos);
    EXPECT_NE(text.find("**FAIL**"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// --- byte-exactness with the plane enabled ---------------------------

TEST(ObservabilityPlane, SweepStatsJsonIdenticalWithPlaneOnAndOff)
{
    ::setenv("PUBS_BENCH_INSTS", "20000", 1);
    ::setenv("PUBS_BENCH_WARMUP", "2000", 1);
    auto buildSpec = [] {
        bench::SweepSpec spec;
        spec.verbose = false;
        spec.jobs = 2;
        wl::Workload w = wl::makeWorkload("hmmer_like");
        spec.add(w, sim::makeConfig(sim::Machine::Base), "base");
        spec.add(w, sim::makeConfig(sim::Machine::Pubs), "pubs");
        return spec;
    };

    const std::string plain = bench::runSweep(buildSpec()).statsJson();

    prof::reset();
    prof::enable(64);
    progress::Meter::Config mc;
    mc.totalRuns = 2;
    mc.quiet = true;
    progress::Meter meter(mc);
    progress::setCallbackSink(
        [&](const progress::Sample &s) { meter.update(s); }, 0);
    const std::string observed = bench::runSweep(buildSpec()).statsJson();
    progress::clearSink();
    meter.finish();
    prof::disable();
    prof::reset();
    ::unsetenv("PUBS_BENCH_INSTS");
    ::unsetenv("PUBS_BENCH_WARMUP");

    EXPECT_EQ(plain, observed);
}

} // namespace
} // namespace pubs
