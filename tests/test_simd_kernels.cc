/**
 * @file
 * Bit-exactness contract of the vectorised hot kernels (common/simd.hh,
 * DESIGN.md §13): the SIMD perceptron dot product and cache-set tag
 * probe must equal their scalar references on any input, and a full
 * detailed simulation taken down the SIMD paths must render statsJson
 * byte-identical to the scalar fallbacks (the PUBS_FORCE_SCALAR A/B the
 * CI simd-off leg exercises across builds, here within one binary).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hh"
#include "common/simd.hh"
#include "common/stats.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs
{
namespace
{

#if PUBS_SIMD_COMPILED

TEST(SimdKernels, PerceptronDotMatchesScalarReference)
{
    Rng rng(12345);
    for (int trial = 0; trial < 2000; ++trial) {
        // The production shapes: up to 64 history bits, weights
        // saturated to [-128, 127] by the perceptron update rule.
        unsigned n = 1 + (unsigned)rng.below(64);
        int16_t w[64];
        for (unsigned i = 0; i < n; ++i)
            w[i] = (int16_t)((int)rng.below(256) - 128);
        uint64_t history = rng.next();
        ASSERT_EQ(simd::perceptronDotSimd(w, n, history),
                  simd::perceptronDotScalar(w, n, history))
            << "n=" << n << " history=" << history;
    }
}

TEST(SimdKernels, TagProbeMatchesScalarReference)
{
    Rng rng(6789);
    for (int trial = 0; trial < 2000; ++trial) {
        unsigned ways = 1 + (unsigned)rng.below(32);
        uint64_t tags[32];
        for (unsigned wy = 0; wy < ways; ++wy)
            tags[wy] = rng.below(64); // small tag space: frequent hits
        uint32_t validMask = (uint32_t)rng.next();
        if (ways < 32)
            validMask &= (1u << ways) - 1;
        // Enforce the production precondition that at most one valid
        // way per set carries a given tag.
        for (unsigned a = 0; a < ways; ++a) {
            for (unsigned b = a + 1; b < ways; ++b) {
                if (((validMask >> a) & 1u) && ((validMask >> b) & 1u) &&
                    tags[a] == tags[b]) {
                    validMask &= ~(1u << b);
                }
            }
        }
        uint64_t probe = rng.below(64);
        ASSERT_EQ(simd::tagProbeSimd(tags, validMask, ways, probe),
                  simd::tagProbeScalar(tags, validMask, ways, probe))
            << "ways=" << ways << " probe=" << probe;
    }
}

#endif // PUBS_SIMD_COMPILED

/** Run one fig8 workload on the PUBS machine and render its statsJson. */
std::string
runStatsJson(bool forceScalar)
{
    bool saved = simd::scalarForced();
    simd::scalarForced() = forceScalar;
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    params.heartbeatInterval = 0;
    sim::Simulator simulator(params, w.program);
    (void)simulator.run(5000, 30000);
    StatRegistry registry;
    simulator.pipeline().fillRegistry(registry);
    simd::scalarForced() = saved;
    return registry.renderJson();
}

TEST(SimdKernels, SimulationStatsJsonBitExactScalarVsSimd)
{
    std::string withSimd = runStatsJson(false);
    std::string scalarOnly = runStatsJson(true);
    EXPECT_EQ(withSimd, scalarOnly);
    // Without compiled vector paths both runs take the scalar kernels
    // and the comparison is trivially true — still a determinism check.
    if (!simd::compiled())
        SUCCEED() << "scalar-only build: dispatchers never vectorise";
}

} // namespace
} // namespace pubs
