/**
 * @file
 * Issue-queue organisation tests: free lists, the partitioned random
 * queue, the shifting queue's age ordering, the circular queue's hole
 * pathology, the age matrix, and the delay model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "iq/age_matrix.hh"
#include "iq/circular_queue.hh"
#include "iq/delay_model.hh"
#include "iq/free_list.hh"
#include "iq/random_queue.hh"
#include "iq/shifting_queue.hh"

namespace pubs::iq
{
namespace
{

TEST(FreeListTest, PopPushRoundTrip)
{
    FreeList list(4, 3); // {4,5,6}
    EXPECT_EQ(list.size(), 3u);
    std::set<uint32_t> seen;
    while (!list.empty())
        seen.insert(list.pop());
    EXPECT_EQ(seen, (std::set<uint32_t>{4, 5, 6}));
    list.push(5);
    EXPECT_EQ(list.pop(), 5u);
}

TEST(FreeListTest, PopRandomCoversAllEntries)
{
    Rng rng(3);
    FreeList list(0, 8);
    std::set<uint32_t> seen;
    while (!list.empty())
        seen.insert(list.popRandom(rng));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(FreeListTest, PopRandomIsUniformish)
{
    // The first pop should hit each of 8 entries roughly uniformly.
    std::vector<int> histogram(8, 0);
    for (uint64_t seed = 0; seed < 4000; ++seed) {
        Rng rng(seed);
        FreeList list(0, 8);
        ++histogram[list.popRandom(rng)];
    }
    for (int count : histogram)
        EXPECT_NEAR(count, 500, 150);
}

TEST(RandomQueueTest, PartitionCapacities)
{
    RandomQueue q(16, 4);
    EXPECT_EQ(q.capacity(), 16u);
    EXPECT_EQ(q.priorityEntries(), 4u);
    EXPECT_EQ(q.freePriority(), 4u);
    EXPECT_EQ(q.freeNormal(), 12u);
    for (uint32_t i = 0; i < 4; ++i)
        q.dispatch(i, i, true);
    EXPECT_FALSE(q.canDispatch(true));
    EXPECT_TRUE(q.canDispatch(false));
    for (uint32_t i = 4; i < 16; ++i)
        q.dispatch(i, i, false);
    EXPECT_FALSE(q.canDispatch(false));
    EXPECT_EQ(q.occupancy(), 16u);
}

TEST(RandomQueueTest, PriorityEntriesOccupyTheHead)
{
    RandomQueue q(16, 4);
    q.dispatch(77, 0, true);
    const auto &slots = q.prioritySlots();
    // The instruction must sit in one of the first 4 (head) slots.
    bool found = false;
    for (uint32_t s = 0; s < 4; ++s)
        found |= slots[s].valid && slots[s].clientId == 77;
    EXPECT_TRUE(found);
}

TEST(RandomQueueTest, RemoveReturnsEntryToCorrectPartition)
{
    RandomQueue q(8, 2);
    q.dispatch(1, 0, true);
    q.dispatch(2, 1, false);
    q.remove(1);
    q.remove(2);
    EXPECT_EQ(q.freePriority(), 2u);
    EXPECT_EQ(q.freeNormal(), 6u);
    EXPECT_EQ(q.occupancy(), 0u);
}

TEST(RandomQueueTest, UniformDispatchFillsWholeQueue)
{
    RandomQueue q(16, 4);
    Rng rng(9);
    for (uint32_t i = 0; i < 16; ++i)
        q.dispatchUniform(i, i, rng);
    EXPECT_EQ(q.occupancy(), 16u);
}

TEST(RandomQueueTest, UniformDispatchWeightsByPartitionRatio)
{
    // With 4/16 priority entries, roughly a quarter of first dispatches
    // should land in the priority partition.
    int priorityHits = 0;
    for (uint64_t seed = 0; seed < 2000; ++seed) {
        RandomQueue q(16, 4, seed);
        Rng rng(seed * 31 + 7);
        q.dispatchUniform(0, 0, rng);
        priorityHits += q.freePriority() == 3;
    }
    EXPECT_NEAR(priorityHits, 500, 150);
}

TEST(RandomQueueTest, PlacementIsRandomisedAcrossSeeds)
{
    std::set<uint32_t> positions;
    for (uint64_t seed = 0; seed < 64; ++seed) {
        RandomQueue q(64, 0, seed);
        q.dispatch(1, 0, false);
        const auto &slots = q.prioritySlots();
        for (uint32_t s = 0; s < slots.size(); ++s)
            if (slots[s].valid)
                positions.insert(s);
    }
    // A random queue should scatter the first dispatch widely.
    EXPECT_GT(positions.size(), 20u);
}

TEST(ShiftingQueueTest, MaintainsAgeOrderAndCompacts)
{
    ShiftingQueue q(8);
    for (uint32_t i = 0; i < 5; ++i)
        q.dispatch(100 + i, i, false);
    q.remove(102); // middle entry: younger ones shift down
    const auto &slots = q.prioritySlots();
    EXPECT_EQ(q.occupancy(), 4u);
    EXPECT_EQ(slots[0].clientId, 100u);
    EXPECT_EQ(slots[1].clientId, 101u);
    EXPECT_EQ(slots[2].clientId, 103u);
    EXPECT_EQ(slots[3].clientId, 104u);
    // Priority order equals age order: seq values ascend.
    for (size_t s = 1; s < q.occupancy(); ++s)
        EXPECT_LT(slots[s - 1].seq, slots[s].seq);
}

TEST(CircularQueueTest, InteriorHolesWasteCapacity)
{
    CircularQueue q(4);
    for (uint32_t i = 0; i < 4; ++i)
        q.dispatch(i, i, false);
    EXPECT_FALSE(q.canDispatch(false));
    q.remove(1); // interior hole: capacity NOT reclaimed
    EXPECT_EQ(q.occupancy(), 3u);
    EXPECT_EQ(q.holes(), 1u);
    EXPECT_FALSE(q.canDispatch(false));
    q.remove(0); // head: reclaims itself AND the adjacent hole
    EXPECT_EQ(q.holes(), 0u);
    EXPECT_TRUE(q.canDispatch(false));
    q.dispatch(10, 10, false);
    q.dispatch(11, 11, false);
    EXPECT_EQ(q.occupancy(), 4u);
}

TEST(CircularQueueTest, WraparoundReversesPositionalPriority)
{
    CircularQueue q(4);
    for (uint32_t i = 0; i < 4; ++i)
        q.dispatch(i, i, false);
    q.remove(0);
    q.remove(1);
    q.dispatch(4, 4, false); // lands at physical slot 0
    const auto &slots = q.prioritySlots();
    // The youngest instruction (seq 4) now has the best position —
    // exactly the pathology Section III-B1 describes.
    EXPECT_TRUE(slots[0].valid);
    EXPECT_EQ(slots[0].seq, 4u);
    EXPECT_EQ(slots[2].seq, 2u);
}

TEST(AgeMatrixTest, TracksRelativeAge)
{
    AgeMatrix age(8);
    age.dispatch(3);
    age.dispatch(5);
    age.dispatch(1);
    EXPECT_TRUE(age.older(3, 5));
    EXPECT_TRUE(age.older(3, 1));
    EXPECT_TRUE(age.older(5, 1));
    EXPECT_FALSE(age.older(1, 3));
}

TEST(AgeMatrixTest, OldestReadySelectsByAgeNotPosition)
{
    AgeMatrix age(8);
    age.dispatch(6); // oldest lives at a high slot index
    age.dispatch(2);
    age.dispatch(0);
    std::vector<uint64_t> ready(1, 0);
    ready[0] |= 1u << 6;
    ready[0] |= 1u << 0;
    EXPECT_EQ(age.oldestReady(ready), 6);
}

TEST(AgeMatrixTest, SkipsNotReadyOlder)
{
    AgeMatrix age(8);
    age.dispatch(6);
    age.dispatch(2);
    std::vector<uint64_t> ready(1, 0);
    ready[0] |= 1u << 2; // only the younger one requests issue
    EXPECT_EQ(age.oldestReady(ready), 2);
}

TEST(AgeMatrixTest, EmptyReadyYieldsNone)
{
    AgeMatrix age(8);
    age.dispatch(1);
    std::vector<uint64_t> ready(1, 0);
    EXPECT_EQ(age.oldestReady(ready), -1);
}

TEST(AgeMatrixTest, RemoveClearsRelations)
{
    AgeMatrix age(8);
    age.dispatch(1);
    age.dispatch(2);
    age.remove(1);
    age.dispatch(1); // re-dispatched: now the youngest
    EXPECT_TRUE(age.older(2, 1));
    EXPECT_FALSE(age.older(1, 2));
}

/** Property: against a reference (min-seq) model under random traffic. */
TEST(AgeMatrixTest, MatchesReferenceUnderRandomTraffic)
{
    Rng rng(17);
    const unsigned size = 64;
    AgeMatrix age(size);
    std::vector<bool> valid(size, false);
    std::vector<uint64_t> seqOf(size, 0);
    uint64_t nextSeq = 1;

    for (int step = 0; step < 5000; ++step) {
        unsigned slot = (unsigned)rng.below(size);
        if (!valid[slot]) {
            age.dispatch(slot);
            valid[slot] = true;
            seqOf[slot] = nextSeq++;
        } else if (rng.chance(0.5)) {
            age.remove(slot);
            valid[slot] = false;
        }
        // Random ready subset of valid slots.
        std::vector<uint64_t> ready(1, 0);
        uint64_t oldestSeq = ~0ull;
        int oldestSlot = -1;
        for (unsigned s = 0; s < size; ++s) {
            if (valid[s] && rng.chance(0.4)) {
                ready[0] |= (uint64_t)1 << s;
                if (seqOf[s] < oldestSeq) {
                    oldestSeq = seqOf[s];
                    oldestSlot = (int)s;
                }
            }
        }
        ASSERT_EQ(age.oldestReady(ready), oldestSlot) << "step " << step;
    }
}

TEST(AgeMatrixTest, CostScalesQuadratically)
{
    EXPECT_EQ(AgeMatrix(64).costBits(), 64u * 64u);
    EXPECT_EQ(AgeMatrix(128).costBits(), 128u * 128u);
}

TEST(DelayModelTest, PaperNumbers)
{
    DelayModel model;
    EXPECT_DOUBLE_EQ(model.cycleTime(false), 1.0);
    EXPECT_DOUBLE_EQ(model.cycleTime(true), 1.13);
    // Fig. 15(b): IPC gains below 13% lose to the clock penalty.
    EXPECT_LT(model.performance(1.10, true), model.performance(1.0, false));
    EXPECT_GT(model.performance(1.20, true), model.performance(1.0, false));
}

TEST(IqKindTest, Names)
{
    EXPECT_STREQ(iqKindName(IqKind::Random), "random");
    EXPECT_STREQ(iqKindName(IqKind::Shifting), "shifting");
    EXPECT_STREQ(iqKindName(IqKind::Circular), "circular");
}

} // namespace
} // namespace pubs::iq
