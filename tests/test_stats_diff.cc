/**
 * @file
 * Tests for the tolerant stats-JSON differ: exact and tolerance-based
 * numeric comparison, allowlisted subtrees, structural mismatches
 * (missing keys, kind changes, array shapes), mismatch bounding, and
 * parse-failure reporting.
 */

#include <gtest/gtest.h>

#include "common/stats_diff.hh"

namespace pubs
{
namespace
{

StatsDiff
diff(const std::string &a, const std::string &b,
     const StatsDiffOptions &options = {})
{
    return diffStatsJsonText(a, b, options);
}

TEST(StatsDiff, IdenticalDocumentsMatch)
{
    StatsDiff d = diff(R"({"run": {"cycles": 100, "name": "fig8"},
                           "hist": [1, 2, 3], "flag": true})",
                       R"({"run": {"cycles": 100, "name": "fig8"},
                           "hist": [1, 2, 3], "flag": true})");
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(d.comparedLeaves, 6u);
    EXPECT_EQ(d.ignoredLeaves, 0u);
}

TEST(StatsDiff, NumericMismatchNamesThePath)
{
    StatsDiff d = diff(R"({"run": {"cycles": 100}})",
                       R"({"run": {"cycles": 101}})");
    ASSERT_EQ(d.mismatches.size(), 1u);
    EXPECT_NE(d.mismatches[0].find("run.cycles"), std::string::npos);
    EXPECT_FALSE(d.ok());
}

TEST(StatsDiff, AbsoluteToleranceAbsorbsSmallDeltas)
{
    StatsDiffOptions options;
    options.absTol = 1.5;
    EXPECT_TRUE(diff(R"({"x": 100})", R"({"x": 101})", options).ok());
    EXPECT_FALSE(diff(R"({"x": 100})", R"({"x": 102})", options).ok());
}

TEST(StatsDiff, RelativeToleranceOfMax)
{
    StatsDiffOptions options;
    options.relTol = 0.01; // 1% of max(|a|,|b|)
    EXPECT_TRUE(diff(R"({"x": 1000})", R"({"x": 1010})", options).ok());
    EXPECT_FALSE(diff(R"({"x": 1000})", R"({"x": 1011})", options).ok());
    // Scale-free: tiny values hold to tiny deltas.
    EXPECT_FALSE(diff(R"({"x": 0.001})", R"({"x": 0.002})", options).ok());
}

TEST(StatsDiff, AllowlistIgnoresLeafAndSubtree)
{
    StatsDiffOptions options;
    options.allow = {"run.kips", "heartbeat"};
    StatsDiff d = diff(
        R"({"run": {"kips": 5000, "cycles": 7},
            "heartbeat": {"ipc": [1, 2]}, "n": 3})",
        R"({"run": {"kips": 1, "cycles": 7},
            "heartbeat": {"ipc": [9]}, "n": 3})",
        options);
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(d.ignoredLeaves, 2u); // the two allowlisted subtrees
    EXPECT_EQ(d.comparedLeaves, 2u);
}

TEST(StatsDiff, AllowlistIsPrefixNotSubstring)
{
    StatsDiffOptions options;
    options.allow = {"run.kips"};
    // "run.kips_total" shares the prefix characters but is a different
    // key, and must still be compared.
    StatsDiff d = diff(R"({"run": {"kips_total": 1}})",
                       R"({"run": {"kips_total": 2}})", options);
    EXPECT_FALSE(d.ok());
}

TEST(StatsDiff, MissingAndExtraKeysAreMismatches)
{
    StatsDiff d = diff(R"({"a": 1, "b": 2})", R"({"a": 1, "c": 3})");
    ASSERT_EQ(d.mismatches.size(), 2u);
    EXPECT_NE(d.mismatches[0].find("b: only in the first"),
              std::string::npos);
    EXPECT_NE(d.mismatches[1].find("c: only in the second"),
              std::string::npos);
}

TEST(StatsDiff, KindMismatchIsReportedNotCompared)
{
    StatsDiff d = diff(R"({"x": 1})", R"({"x": "1"})");
    ASSERT_EQ(d.mismatches.size(), 1u);
    EXPECT_NE(d.mismatches[0].find("number vs string"),
              std::string::npos);
}

TEST(StatsDiff, ArrayLengthAndElementMismatches)
{
    StatsDiff shape = diff(R"({"h": [1, 2]})", R"({"h": [1, 2, 3]})");
    ASSERT_EQ(shape.mismatches.size(), 1u);
    EXPECT_NE(shape.mismatches[0].find("array length 2 vs 3"),
              std::string::npos);

    StatsDiff element = diff(R"({"h": [1, 2]})", R"({"h": [1, 9]})");
    ASSERT_EQ(element.mismatches.size(), 1u);
    EXPECT_NE(element.mismatches[0].find("h[1]"), std::string::npos);
}

TEST(StatsDiff, MismatchCollectionIsBounded)
{
    std::string a = "{", b = "{";
    for (int i = 0; i < 100; ++i) {
        std::string sep = i ? "," : "";
        a += sep + "\"k" + std::to_string(i) + "\": 0";
        b += sep + "\"k" + std::to_string(i) + "\": 1";
    }
    a += "}";
    b += "}";
    StatsDiffOptions options;
    options.maxMismatches = 5;
    StatsDiff d = diff(a, b, options);
    EXPECT_EQ(d.mismatches.size(), 5u);
    EXPECT_FALSE(d.ok());
}

TEST(StatsDiff, ParseFailureIsAMismatch)
{
    StatsDiff d = diff("{broken", R"({"x": 1})");
    ASSERT_EQ(d.mismatches.size(), 1u);
    EXPECT_NE(d.mismatches[0].find("first document is invalid JSON"),
              std::string::npos);

    StatsDiff e = diff(R"({"x": 1})", "not json");
    ASSERT_EQ(e.mismatches.size(), 1u);
    EXPECT_NE(e.mismatches[0].find("second document is invalid JSON"),
              std::string::npos);
}

TEST(StatsDiff, StringAndBoolLeaves)
{
    EXPECT_FALSE(diff(R"({"s": "a"})", R"({"s": "b"})").ok());
    EXPECT_FALSE(diff(R"({"b": true})", R"({"b": false})").ok());
    EXPECT_TRUE(diff(R"({"n": null})", R"({"n": null})").ok());
}

} // namespace
} // namespace pubs
