/**
 * @file
 * Fault-isolation tests: the pipe frame protocol, the seeded
 * fault-injection plan, and the ProcPool recovery matrix (crash,
 * hang-past-timeout, corrupt frame, permanent failure after retries).
 *
 * These tests fork, so the suites are deliberately named outside the
 * TSan CI job's test regex — fork() in a threaded TSan process is not a
 * supported combination.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include <signal.h>

#include "common/subprocess.hh"
#include "sim/proc_pool.hh"

namespace pubs
{
namespace
{

// --- frame protocol --------------------------------------------------

TEST(FrameProtocol, RoundTrip)
{
    std::string payload = "hello sweep row \x01\x02\xff";
    std::string frame = proc::encodeFrame(payload);
    EXPECT_EQ(frame.size(), proc::frameHeaderBytes + payload.size());

    std::string decoded;
    EXPECT_EQ(proc::decodeFrame(frame, decoded), proc::FrameStatus::Ok);
    EXPECT_EQ(decoded, payload);
}

TEST(FrameProtocol, EmptyPayloadRoundTrip)
{
    std::string frame = proc::encodeFrame("");
    std::string decoded;
    EXPECT_EQ(proc::decodeFrame(frame, decoded), proc::FrameStatus::Ok);
    EXPECT_TRUE(decoded.empty());
}

TEST(FrameProtocol, EveryPrefixIsTruncatedNeverOk)
{
    std::string frame = proc::encodeFrame("payload bytes");
    std::string decoded;
    for (size_t n = 0; n < frame.size(); ++n) {
        SCOPED_TRACE("prefix length " + std::to_string(n));
        EXPECT_EQ(proc::decodeFrame(frame.substr(0, n), decoded),
                  proc::FrameStatus::Truncated);
    }
}

TEST(FrameProtocol, BadMagicIsCorruptImmediately)
{
    std::string frame = proc::encodeFrame("payload");
    frame[0] = 'X';
    std::string decoded;
    EXPECT_EQ(proc::decodeFrame(frame, decoded),
              proc::FrameStatus::Corrupt);
    // Even a one-byte buffer with the wrong magic can never become a
    // valid frame.
    EXPECT_EQ(proc::decodeFrame("X", decoded), proc::FrameStatus::Corrupt);
}

TEST(FrameProtocol, PayloadBitFlipFailsCrc)
{
    std::string frame = proc::encodeFrame("payload bytes");
    std::string decoded;
    for (size_t i = proc::frameHeaderBytes; i < frame.size(); ++i) {
        SCOPED_TRACE("flip at " + std::to_string(i));
        std::string bad = frame;
        bad[i] = (char)(bad[i] ^ 0x40);
        EXPECT_EQ(proc::decodeFrame(bad, decoded),
                  proc::FrameStatus::Corrupt);
    }
}

TEST(FrameProtocol, TrailingGarbageIsCorrupt)
{
    std::string frame = proc::encodeFrame("payload") + "junk";
    std::string decoded;
    EXPECT_EQ(proc::decodeFrame(frame, decoded),
              proc::FrameStatus::Corrupt);
}

// --- fault plan ------------------------------------------------------

TEST(FaultPlan, ParsesDirectives)
{
    proc::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(
        proc::parseFaultPlan("crash:0.25:7,hang:0.5,corrupt", plan, error))
        << error;
    EXPECT_DOUBLE_EQ(plan.crashRate, 0.25);
    EXPECT_DOUBLE_EQ(plan.hangRate, 0.5);
    EXPECT_DOUBLE_EQ(plan.corruptRate, 1.0); // rate defaults to 1
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_TRUE(plan.any());

    ASSERT_TRUE(proc::parseFaultPlan("killafter:12", plan, error)) << error;
    EXPECT_EQ(plan.killAfter, 12u);
    EXPECT_DOUBLE_EQ(plan.crashRate, 0.0);

    ASSERT_TRUE(proc::parseFaultPlan("", plan, error)) << error;
    EXPECT_FALSE(plan.any());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    proc::FaultPlan plan;
    std::string error;
    for (const char *bad : {"explode", "crash:2.0", "crash:-1", "crash:x",
                            "killafter", "killafter:0", "crash:0.5:-3"}) {
        SCOPED_TRACE(bad);
        EXPECT_FALSE(proc::parseFaultPlan(bad, plan, error));
        EXPECT_FALSE(error.empty());
    }
}

TEST(FaultPlan, RollIsDeterministicAndSeedSensitive)
{
    proc::FaultPlan plan;
    plan.crashRate = 0.5;
    plan.seed = 42;
    unsigned hits = 0;
    for (uint64_t i = 0; i < 256; ++i) {
        bool first = plan.injectCrash(i, 1);
        EXPECT_EQ(first, plan.injectCrash(i, 1)); // pure function
        hits += first ? 1 : 0;
        // A different attempt or seed is an independent coin; across
        // 256 tasks at rate 0.5 at least one must differ.
    }
    // rate 0.5 over 256 coins: all-heads/all-tails means a broken hash.
    EXPECT_GT(hits, 64u);
    EXPECT_LT(hits, 192u);

    proc::FaultPlan reseeded = plan;
    reseeded.seed = 43;
    bool anyDiffers = false;
    for (uint64_t i = 0; i < 256 && !anyDiffers; ++i)
        anyDiffers = plan.injectCrash(i, 1) != reseeded.injectCrash(i, 1);
    EXPECT_TRUE(anyDiffers);

    proc::FaultPlan never;
    never.crashRate = 0.0;
    proc::FaultPlan always;
    always.crashRate = 1.0;
    EXPECT_FALSE(never.injectCrash(0, 1));
    EXPECT_TRUE(always.injectCrash(0, 1));
}

// --- proc pool recovery matrix ---------------------------------------

sim::ProcPool::Config
quietConfig(unsigned procs, unsigned maxAttempts)
{
    sim::ProcPool::Config config;
    config.procs = procs;
    config.maxAttempts = maxAttempts;
    config.backoffBaseMs = 1; // keep retries fast under test
    config.timeoutSeconds = 120.0;
    config.faultsFromEnv = false; // ignore any ambient PUBS_FAULT
    return config;
}

TEST(ProcPool, RoundTripIsSlotIndexed)
{
    sim::ProcPool pool(quietConfig(4, 1));
    std::vector<sim::ProcResult> results =
        pool.run(9, [](size_t index, unsigned attempt) {
            return "task " + std::to_string(index) + " attempt " +
                   std::to_string(attempt);
        });
    ASSERT_EQ(results.size(), 9u);
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("slot " + std::to_string(i));
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].attempts, 1u);
        EXPECT_EQ(results[i].payload,
                  "task " + std::to_string(i) + " attempt 1");
    }
    EXPECT_EQ(pool.stats().launches, 9u);
    EXPECT_EQ(pool.stats().permanentFailures, 0u);
}

TEST(ProcPool, EmptyRunReturnsEmpty)
{
    sim::ProcPool pool(quietConfig(2, 1));
    EXPECT_TRUE(pool.run(0, [](size_t, unsigned) { return ""; }).empty());
}

TEST(ProcPool, CrashingWorkerIsRetriedAndSucceeds)
{
    sim::ProcPool pool(quietConfig(2, 3));
    std::vector<sim::ProcResult> results =
        pool.run(4, [](size_t index, unsigned attempt) -> std::string {
            if (index % 2 == 0 && attempt == 1) {
                // First attempt of the even tasks segfaults; the retry
                // (a fresh process) must succeed untouched.
                ::signal(SIGSEGV, SIG_DFL);
                ::raise(SIGSEGV);
            }
            return "ok " + std::to_string(index);
        });
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("slot " + std::to_string(i));
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].payload, "ok " + std::to_string(i));
        EXPECT_EQ(results[i].attempts, i % 2 == 0 ? 2u : 1u);
    }
    EXPECT_EQ(pool.stats().crashes, 2u);
    EXPECT_EQ(pool.stats().retries, 2u);
    EXPECT_EQ(pool.stats().permanentFailures, 0u);
}

TEST(ProcPool, CrashBeyondRetryBecomesSkip)
{
    sim::ProcPool::Config config = quietConfig(2, 2);
    config.faults.crashRate = 1.0; // every attempt of every task
    sim::ProcPool pool(config);
    std::vector<sim::ProcResult> results =
        pool.run(3, [](size_t, unsigned) { return std::string("unused"); });
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("slot " + std::to_string(i));
        EXPECT_FALSE(results[i].ok);
        EXPECT_EQ(results[i].attempts, 2u);
        EXPECT_NE(results[i].error.find("after 2 attempts"),
                  std::string::npos)
            << results[i].error;
        EXPECT_NE(results[i].error.find("signal"), std::string::npos)
            << results[i].error;
    }
    EXPECT_EQ(pool.stats().crashes, 6u);
    EXPECT_EQ(pool.stats().permanentFailures, 3u);
}

TEST(ProcPool, HangingWorkerIsKilledAndRetried)
{
    sim::ProcPool::Config config = quietConfig(2, 2);
    config.timeoutSeconds = 0.3;
    sim::ProcPool pool(config);
    std::vector<sim::ProcResult> results =
        pool.run(2, [](size_t, unsigned attempt) -> std::string {
            if (attempt == 1) {
                for (;;)
                    ::pause();
            }
            return "awake";
        });
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("slot " + std::to_string(i));
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].payload, "awake");
        EXPECT_EQ(results[i].attempts, 2u);
    }
    EXPECT_EQ(pool.stats().timeouts, 2u);
    EXPECT_EQ(pool.stats().retries, 2u);
}

TEST(ProcPool, CorruptFrameIsRejectedByCrc)
{
    sim::ProcPool::Config config = quietConfig(2, 2);
    config.faults.corruptRate = 1.0; // every frame of every attempt
    sim::ProcPool pool(config);
    std::vector<sim::ProcResult> results =
        pool.run(2, [](size_t, unsigned) { return std::string("data"); });
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("slot " + std::to_string(i));
        EXPECT_FALSE(results[i].ok);
        EXPECT_NE(results[i].error.find("corrupt"), std::string::npos)
            << results[i].error;
    }
    EXPECT_EQ(pool.stats().corruptFrames, 4u);
    EXPECT_EQ(pool.stats().permanentFailures, 2u);
}

TEST(ProcPool, ThrowingChildFnIsRetriedAsFailure)
{
    sim::ProcPool pool(quietConfig(1, 2));
    std::vector<sim::ProcResult> results =
        pool.run(1, [](size_t, unsigned attempt) -> std::string {
            if (attempt == 1)
                throw std::runtime_error("boom");
            return "recovered";
        });
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].payload, "recovered");
    EXPECT_EQ(results[0].attempts, 2u);
}

TEST(ProcPool, SeededInjectionEventuallyRecovers)
{
    // With a per-(task, attempt) coin at rate 0.5 and 16 attempts, a
    // task exhausts its retries with odds 2^-16 — and the coin is
    // deterministic, so this test either always passes or always fails
    // for a given seed.
    sim::ProcPool::Config config = quietConfig(4, 16);
    config.faults.crashRate = 0.5;
    config.faults.seed = 1234;
    sim::ProcPool pool(config);
    std::vector<sim::ProcResult> results = pool.run(
        8, [](size_t index, unsigned) { return std::to_string(index); });
    for (size_t i = 0; i < results.size(); ++i) {
        SCOPED_TRACE("slot " + std::to_string(i));
        EXPECT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(results[i].payload, std::to_string(i));
    }
    EXPECT_GT(pool.stats().crashes, 0u);
}

} // namespace
} // namespace pubs
