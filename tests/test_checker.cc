/**
 * @file
 * Tests for the verification subsystem: the lockstep commit checker
 * (sim/checker.hh), the structural invariant auditor (cpu/audit.hh),
 * CoreParams::validate(), and the CheckPolicy plumbing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/error.hh"
#include "cpu/audit.hh"
#include "cpu/pipeline.hh"
#include "cpu/rename.hh"
#include "emu/emulator.hh"
#include "iq/age_matrix.hh"
#include "iq/random_queue.hh"
#include "isa/assembler.hh"
#include "sim/checker.hh"
#include "sim/config.hh"
#include "workloads/suite.hh"

namespace pubs
{
namespace
{

isa::Program
loopProgram()
{
    return isa::assemble(R"(
        li r1, 0
        li r2, 50
        li r3, 0
    loop:
        addi r1, r1, 1
        add r3, r3, r1
        blt r1, r2, loop
        halt
    )");
}

// ---------------------------------------------------------------------
// CommitChecker
// ---------------------------------------------------------------------

TEST(CommitChecker, CleanRunHasNoDivergence)
{
    isa::Program prog = loopProgram();
    emu::Emulator emu(prog);
    sim::CommitChecker checker(prog);

    trace::DynInst di;
    while (emu.step(di))
        EXPECT_EQ(checker.check(di, 0), "");
    EXPECT_GT(checker.commitsChecked(), 0u);
    EXPECT_EQ(checker.divergences(), 0u);
}

TEST(CommitChecker, DetectsCorruptedNextPc)
{
    isa::Program prog = loopProgram();
    emu::Emulator emu(prog);
    sim::CommitChecker checker(prog);

    trace::DynInst di;
    uint64_t n = 0;
    bool caught = false;
    while (emu.step(di)) {
        if (++n == 10)
            di.nextPc += instBytes; // simulated wrong-stream commit
        std::string diag = checker.check(di, n);
        if (n == 10) {
            caught = true;
            EXPECT_NE(diag.find("divergence"), std::string::npos);
            EXPECT_NE(diag.find("next-pc"), std::string::npos);
            // The diagnostic carries the recent commit history.
            EXPECT_NE(diag.find("committed instructions"),
                      std::string::npos);
            break;
        }
        EXPECT_EQ(diag, "");
    }
    EXPECT_TRUE(caught);
    EXPECT_EQ(checker.divergences(), 1u);
}

TEST(CommitChecker, DetectsCorruptedDstValue)
{
    isa::Program prog = loopProgram();
    emu::Emulator emu(prog);
    sim::CommitChecker checker(prog);

    trace::DynInst di;
    uint64_t n = 0;
    while (emu.step(di)) {
        ++n;
        if (di.hasDstValue && n > 5) {
            di.dstValue ^= 0x80; // flip a result bit
            std::string diag = checker.check(di, n);
            EXPECT_NE(diag.find("dst value"), std::string::npos);
            return;
        }
        EXPECT_EQ(checker.check(di, n), "");
    }
    FAIL() << "program produced no destination values";
}

TEST(CommitChecker, DetectsCommitPastHalt)
{
    isa::Program prog = loopProgram();
    emu::Emulator emu(prog);
    sim::CommitChecker checker(prog);

    trace::DynInst di, last{};
    while (emu.step(di)) {
        EXPECT_EQ(checker.check(di, 0), "");
        last = di;
    }
    // The pipeline claims to commit one more instruction than the
    // program contains.
    std::string diag = checker.check(last, 0);
    EXPECT_NE(diag.find("already halted"), std::string::npos);
}

// ---------------------------------------------------------------------
// Pipeline integration: checker + auditor on live simulations
// ---------------------------------------------------------------------

/** Wraps an emulator and corrupts the Nth instruction it hands out. */
class CorruptingSource : public trace::InstSource
{
  public:
    CorruptingSource(const isa::Program &program, uint64_t corruptAt)
        : emu_(program), program_(program), corruptAt_(corruptAt)
    {}

    bool
    next(trace::DynInst &out) override
    {
        if (!emu_.next(out))
            return false;
        if (++count_ == corruptAt_ && out.hasDstValue)
            out.dstValue += 1;
        return true;
    }

    const isa::Program *program() const override { return &program_; }

  private:
    emu::Emulator emu_;
    const isa::Program &program_;
    uint64_t corruptAt_;
    uint64_t count_ = 0;
};

TEST(PipelineChecker, CleanWorkloadPassesLockstep)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    params.checkPolicy = CheckPolicy::Throw;
    params.auditPolicy = CheckPolicy::Throw;
    params.auditInterval = 256;

    emu::Emulator emu(w.program);
    cpu::Pipeline pipe(params, emu);
    EXPECT_NO_THROW(pipe.run(30000));
    EXPECT_GT(pipe.stats().checkerCommits, 0u);
    EXPECT_EQ(pipe.stats().checkerDivergences, 0u);
    EXPECT_GT(pipe.stats().auditsRun, 0u);
    EXPECT_EQ(pipe.stats().auditViolations, 0u);
    ASSERT_NE(pipe.checker(), nullptr);
    EXPECT_EQ(pipe.checker()->divergences(), 0u);
}

TEST(PipelineChecker, CorruptedStreamThrowsCheckError)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Base);
    params.checkPolicy = CheckPolicy::Throw;

    CorruptingSource source(w.program, 2000);
    cpu::Pipeline pipe(params, source);
    EXPECT_THROW(pipe.run(30000), CheckError);
}

TEST(PipelineChecker, WarnPolicyCountsButContinues)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Base);
    params.checkPolicy = CheckPolicy::Warn;

    CorruptingSource source(w.program, 2000);
    cpu::Pipeline pipe(params, source);
    EXPECT_NO_THROW(pipe.run(30000));
    EXPECT_GE(pipe.stats().checkerDivergences, 1u);
}

// ---------------------------------------------------------------------
// Structural auditor on seeded corruption
// ---------------------------------------------------------------------

TEST(Auditor, CleanRenameUnitPasses)
{
    cpu::RenameUnit rename(64, 64);
    cpu::AuditReport report;
    cpu::Auditor::checkRenameBijection(rename, isa::RegClass::Int, {},
                                       report);
    cpu::Auditor::checkRenameBijection(rename, isa::RegClass::Fp, {},
                                       report);
    EXPECT_TRUE(report.ok()) << report.format("clean rename");
}

TEST(Auditor, PendingFreeCompletesTheBijection)
{
    cpu::RenameUnit rename(64, 64);
    PhysRegId prev = invalidPhysReg;
    rename.renameDst(isa::RegClass::Int, 3, prev);

    // Without the pending-free set the previous mapping looks leaked.
    cpu::AuditReport broken;
    cpu::Auditor::checkRenameBijection(rename, isa::RegClass::Int, {},
                                       broken);
    EXPECT_FALSE(broken.ok());

    cpu::AuditReport fixed;
    cpu::Auditor::checkRenameBijection(rename, isa::RegClass::Int, {prev},
                                       fixed);
    EXPECT_TRUE(fixed.ok()) << fixed.format("with pending free");
}

TEST(Auditor, DetectsDoubleFree)
{
    cpu::RenameUnit rename(64, 64);
    // Freeing a register that is still mapped puts it in two places.
    rename.freeReg(isa::RegClass::Int, rename.mapOf(isa::RegClass::Int, 0));
    cpu::AuditReport report;
    cpu::Auditor::checkRenameBijection(rename, isa::RegClass::Int, {},
                                       report);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.format("double free").find("double-held"),
              std::string::npos);
}

TEST(Auditor, IqPartitionAccountingClean)
{
    iq::RandomQueue queue(8, 2);
    queue.dispatch(10, 0, true);
    queue.dispatch(11, 1, false);
    queue.dispatch(12, 2, false);
    cpu::AuditReport report;
    cpu::Auditor::checkIqPartition(queue, report);
    EXPECT_TRUE(report.ok()) << report.format("clean IQ");
    queue.remove(11);
    cpu::AuditReport after;
    cpu::Auditor::checkIqPartition(queue, after);
    EXPECT_TRUE(after.ok()) << after.format("after remove");
}

TEST(Auditor, AgeMatrixTracksQueue)
{
    iq::RandomQueue queue(8, 0);
    iq::AgeMatrix matrix(8);
    auto place = [&](uint32_t id, SeqNum seq) {
        queue.dispatch(id, seq, false);
        const auto &slots = queue.prioritySlots();
        for (unsigned s = 0; s < slots.size(); ++s) {
            if (slots[s].valid && slots[s].clientId == id) {
                matrix.dispatch(s);
                break;
            }
        }
    };
    place(1, 100);
    place(2, 101);
    place(3, 102);
    cpu::AuditReport report;
    cpu::Auditor::checkAgeMatrix(matrix, queue, report);
    EXPECT_TRUE(report.ok()) << report.format("clean age matrix");

    // Corrupt: clear a matrix valid bit while the slot stays occupied.
    const auto &slots = queue.prioritySlots();
    for (unsigned s = 0; s < slots.size(); ++s) {
        if (slots[s].valid) {
            matrix.remove(s);
            break;
        }
    }
    cpu::AuditReport broken;
    cpu::Auditor::checkAgeMatrix(matrix, queue, broken);
    EXPECT_FALSE(broken.ok());
}

// ---------------------------------------------------------------------
// CoreParams::validate
// ---------------------------------------------------------------------

TEST(CoreParamsValidate, DefaultsAreValid)
{
    EXPECT_NO_THROW(cpu::CoreParams{}.validate());
    for (auto machine : {sim::Machine::Base, sim::Machine::Pubs,
                         sim::Machine::Age, sim::Machine::PubsAge}) {
        for (auto size : {cpu::SizeClass::Small, cpu::SizeClass::Medium,
                          cpu::SizeClass::Large, cpu::SizeClass::Huge}) {
            EXPECT_NO_THROW(sim::makeConfig(machine, size).validate());
        }
    }
}

TEST(CoreParamsValidate, RejectsBadCombinations)
{
    cpu::CoreParams p;

    p = cpu::CoreParams{};
    p.fetchWidth = 0;
    EXPECT_THROW(p.validate(), ConfigError);

    p = cpu::CoreParams{};
    p.intPhysRegs = 8; // fewer than the architectural registers
    EXPECT_THROW(p.validate(), ConfigError);

    p = sim::makeConfig(sim::Machine::Pubs);
    p.iqKind = iq::IqKind::Circular;
    EXPECT_THROW(p.validate(), ConfigError);

    p = sim::makeConfig(sim::Machine::Pubs);
    p.pubs.priorityEntries = p.iqEntries;
    EXPECT_THROW(p.validate(), ConfigError);

    p = cpu::CoreParams{};
    p.idealPrioritySelect = true; // without usePubs
    EXPECT_THROW(p.validate(), ConfigError);

    p = cpu::CoreParams{};
    p.btbSets = 100; // not a power of two
    EXPECT_THROW(p.validate(), ConfigError);

    p = cpu::CoreParams{};
    p.memory.l1d.lineBytes = 48; // not a power of two
    EXPECT_THROW(p.validate(), ConfigError);

    p = sim::makeConfig(sim::Machine::Age);
    p.distributedIq = true; // age matrix + distributed IQ
    EXPECT_THROW(p.validate(), ConfigError);
}

TEST(CoreParamsValidate, CollectsAllProblemsAtOnce)
{
    cpu::CoreParams p;
    p.fetchWidth = 0;
    p.robEntries = 0;
    p.btbSets = 0;
    std::vector<std::string> errors = p.validationErrors();
    EXPECT_GE(errors.size(), 3u);
    try {
        p.validate();
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &error) {
        EXPECT_EQ(error.kind(), SimError::Kind::Config);
        // The message enumerates every problem.
        EXPECT_NE(std::string(error.what()).find("robEntries"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// CheckPolicy plumbing
// ---------------------------------------------------------------------

TEST(CheckPolicy, ParseAndName)
{
    CheckPolicy policy;
    ASSERT_TRUE(parseCheckPolicy("off", policy));
    EXPECT_EQ(policy, CheckPolicy::Off);
    ASSERT_TRUE(parseCheckPolicy("warn", policy));
    EXPECT_EQ(policy, CheckPolicy::Warn);
    ASSERT_TRUE(parseCheckPolicy("throw", policy));
    EXPECT_EQ(policy, CheckPolicy::Throw);
    ASSERT_TRUE(parseCheckPolicy("abort", policy));
    EXPECT_EQ(policy, CheckPolicy::Abort);
    EXPECT_FALSE(parseCheckPolicy("bogus", policy));

    EXPECT_STREQ(checkPolicyName(CheckPolicy::Warn), "warn");
    EXPECT_STREQ(checkPolicyName(CheckPolicy::Throw), "throw");
}

TEST(CheckPolicy, EnvOverride)
{
    ::unsetenv("PUBS_CHECK");
    EXPECT_EQ(checkPolicyFromEnv(CheckPolicy::Warn), CheckPolicy::Warn);
    ::setenv("PUBS_CHECK", "throw", 1);
    EXPECT_EQ(checkPolicyFromEnv(CheckPolicy::Off), CheckPolicy::Throw);
    ::setenv("PUBS_CHECK", "nonsense", 1);
    EXPECT_EQ(checkPolicyFromEnv(CheckPolicy::Warn), CheckPolicy::Warn);
    ::unsetenv("PUBS_CHECK");
}

TEST(CheckPolicy, ReportViolationRespectsPolicy)
{
    EXPECT_NO_THROW(
        reportViolation(CheckPolicy::Off, SimError::Kind::Check, "x"));
    EXPECT_THROW(
        reportViolation(CheckPolicy::Throw, SimError::Kind::Check, "x"),
        CheckError);
    EXPECT_THROW(
        reportViolation(CheckPolicy::Throw, SimError::Kind::Audit, "x"),
        AuditError);
    EXPECT_THROW(
        reportViolation(CheckPolicy::Throw, SimError::Kind::Trace, "x"),
        TraceError);
}

} // namespace
} // namespace pubs
