/**
 * @file
 * Memory-hierarchy tests: cache hit/miss/LRU/writeback behaviour, MSHR
 * merging, main-memory bandwidth, the stream prefetcher, and the
 * composed MemorySystem.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "mem/stream_prefetcher.hh"

namespace pubs::mem
{
namespace
{

CacheParams
smallCache(unsigned sizeKb = 1, unsigned ways = 2)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = sizeKb * 1024;
    p.ways = ways;
    p.lineBytes = 64;
    p.hitLatency = 2;
    p.mshrs = 4;
    return p;
}

TEST(CacheTest, ColdMissThenHit)
{
    MainMemory dram(100, 8, 64);
    Cache cache(smallCache(), &dram);
    bool hit = true;
    Cycle ready = cache.access(0x1000, false, 10, hit);
    EXPECT_FALSE(hit);
    EXPECT_GE(ready, 110u); // at least the memory latency
    ready = cache.access(0x1008, false, ready, hit); // same line
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.demandAccesses(), 2u);
    EXPECT_EQ(cache.demandMisses(), 1u);
}

TEST(CacheTest, HitLatency)
{
    MainMemory dram(100, 8, 64);
    Cache cache(smallCache(), &dram);
    bool hit;
    cache.access(0x1000, false, 0, hit);
    Cycle ready = cache.access(0x1000, false, 1000, hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(ready, 1002u);
}

TEST(CacheTest, LruEviction)
{
    // 1 KB, 2-way, 64 B lines: 8 sets. Three lines in one set.
    MainMemory dram(100, 8, 64);
    Cache cache(smallCache(), &dram);
    Addr a = 0x0000, b = a + 8 * 64, c = a + 16 * 64;
    bool hit;
    cache.access(a, false, 0, hit);
    cache.access(b, false, 1000, hit);
    cache.access(a, false, 2000, hit); // a is MRU
    cache.access(c, false, 3000, hit); // evicts b
    cache.access(a, false, 4000, hit);
    EXPECT_TRUE(hit);
    cache.access(b, false, 5000, hit);
    EXPECT_FALSE(hit);
}

TEST(CacheTest, DirtyEvictionCountsWriteback)
{
    MainMemory dram(100, 8, 64);
    Cache cache(smallCache(), &dram);
    Addr a = 0x0000, b = a + 8 * 64, c = a + 16 * 64;
    bool hit;
    cache.access(a, true, 0, hit); // write-allocate, dirty
    cache.access(b, false, 1000, hit);
    cache.access(c, false, 2000, hit); // evicts dirty a
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(CacheTest, MshrMergesOutstandingMisses)
{
    MainMemory dram(100, 8, 64);
    Cache cache(smallCache(), &dram);
    bool hit;
    Cycle r1 = cache.access(0x1000, false, 10, hit);
    // Second access to the same line while the miss is outstanding.
    Cycle r2 = cache.access(0x1010, false, 11, hit);
    EXPECT_FALSE(hit); // counts as a merge, not an L1 hit
    EXPECT_EQ(r2, r1); // data arrives with the same fill
    EXPECT_EQ(cache.mshrHits(), 1u);
    EXPECT_EQ(dram.requests(), 1u);
    // Once the fill lands, accesses are plain hits again.
    cache.access(0x1020, false, r1 + 1, hit);
    EXPECT_TRUE(hit);
}

TEST(CacheTest, MshrExhaustionDelaysRequests)
{
    MainMemory dram(100, 64, 64); // high bandwidth: no channel skew
    Cache cache(smallCache(), &dram);
    bool hit;
    Cycle last = 0;
    // 4 MSHRs; the 5th concurrent miss must wait for a retirement.
    for (int i = 0; i < 5; ++i)
        last = cache.access(0x10000 + (Addr)i * 4096, false, 0, hit);
    EXPECT_GT(last, 200u); // serialised behind an earlier fill
}

TEST(CacheTest, PrefetchInstallsWithoutDemandStats)
{
    MainMemory dram(100, 8, 64);
    Cache cache(smallCache(), &dram);
    cache.installPrefetch(0x2000, 0);
    EXPECT_EQ(cache.demandAccesses(), 0u);
    EXPECT_EQ(cache.demandMisses(), 0u);
    EXPECT_EQ(cache.prefetchFills(), 1u);
    EXPECT_TRUE(cache.contains(0x2000));
    bool hit;
    cache.access(0x2000, false, 1000, hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.usefulPrefetches(), 1u);
}

TEST(CacheTest, PrefetchToPresentLineIsIdempotent)
{
    MainMemory dram(100, 8, 64);
    Cache cache(smallCache(), &dram);
    bool hit;
    cache.access(0x2000, false, 0, hit);
    cache.installPrefetch(0x2000, 10);
    EXPECT_EQ(cache.prefetchFills(), 0u);
}

TEST(MainMemoryTest, BandwidthSerialisesBursts)
{
    MainMemory dram(300, 8, 64); // 8 cycles of channel time per line
    Cycle r1 = dram.fill(0x0, 0, false);
    Cycle r2 = dram.fill(0x40, 0, false);
    Cycle r3 = dram.fill(0x80, 0, false);
    EXPECT_EQ(r1, 300u);
    EXPECT_EQ(r2, 308u);
    EXPECT_EQ(r3, 316u);
}

TEST(StreamPrefetcherTest, DetectsAscendingStream)
{
    MainMemory dram(100, 8, 64);
    CacheParams l2p = smallCache(64, 4);
    Cache l2(l2p, &dram);
    StreamPrefetcherParams params;
    params.streams = 4;
    params.distanceLines = 4;
    params.degree = 2;
    params.lineBytes = 64;
    StreamPrefetcher pf(params, &l2);

    pf.observeMiss(0x10000, 0);         // allocate
    pf.observeMiss(0x10040, 10);        // confirm direction
    EXPECT_GT(pf.prefetchesIssued(), 0u);
    // Prefetches land "distance" lines ahead.
    EXPECT_TRUE(l2.contains(0x10040 + 4 * 64));
    EXPECT_TRUE(l2.contains(0x10040 + 5 * 64));
}

TEST(StreamPrefetcherTest, DetectsDescendingStream)
{
    MainMemory dram(100, 8, 64);
    Cache l2(smallCache(64, 4), &dram);
    StreamPrefetcherParams params;
    params.distanceLines = 4;
    params.degree = 1;
    StreamPrefetcher pf(params, &l2);
    pf.observeMiss(0x20000, 0);
    pf.observeMiss(0x20000 - 64, 10);
    pf.observeMiss(0x20000 - 128, 20);
    EXPECT_TRUE(l2.contains(0x20000 - 128 - 4 * 64));
}

TEST(StreamPrefetcherTest, RandomMissesPrefetchNothing)
{
    MainMemory dram(100, 8, 64);
    Cache l2(smallCache(64, 4), &dram);
    StreamPrefetcher pf(StreamPrefetcherParams{}, &l2);
    // Far-apart misses never match a stream window.
    for (int i = 0; i < 32; ++i)
        pf.observeMiss((Addr)i * 1024 * 1024, (Cycle)i);
    EXPECT_EQ(pf.prefetchesIssued(), 0u);
}

TEST(MemorySystemTest, TableIDefaults)
{
    MemorySystem mem(MemoryParams{});
    EXPECT_EQ(mem.l1d().params().sizeBytes, 32u * 1024);
    EXPECT_EQ(mem.l1d().params().ways, 8u);
    EXPECT_EQ(mem.l2().params().sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(mem.l2().params().hitLatency, 12u);
}

TEST(MemorySystemTest, DataPathCountsLlcMisses)
{
    MemorySystem mem(MemoryParams{});
    DataAccess first = mem.dataAccess(0x5000000, false, 0);
    EXPECT_FALSE(first.l1Hit);
    EXPECT_TRUE(first.llcMiss);
    EXPECT_EQ(mem.llcMisses(), 1u);
    DataAccess second = mem.dataAccess(0x5000000, false, first.readyCycle);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_FALSE(second.llcMiss);
}

TEST(MemorySystemTest, FetchPathUsesTheL1I)
{
    MemorySystem mem(MemoryParams{});
    Cycle miss = mem.fetchAccess(0x1000, 0);
    EXPECT_GT(miss, 12u); // had to go below the L1I
    Cycle hitReady = mem.fetchAccess(0x1000, miss);
    EXPECT_EQ(hitReady, miss + mem.l1i().params().hitLatency);
}

TEST(MemorySystemTest, SequentialMissesTrainThePrefetcher)
{
    MemorySystem mem(MemoryParams{});
    Cycle t = 0;
    for (int i = 0; i < 64; ++i) {
        DataAccess access = mem.dataAccess(0x6000000 + (Addr)i * 64,
                                           false, t);
        t = access.readyCycle;
    }
    ASSERT_NE(mem.prefetcher(), nullptr);
    EXPECT_GT(mem.prefetcher()->prefetchesIssued(), 0u);
    // Late accesses should increasingly hit prefetched L2 lines: total
    // latency is far below 64 DRAM round trips.
    EXPECT_LT(t, 64u * 312u);
}

TEST(MemorySystemTest, PrefetchCanBeDisabled)
{
    MemoryParams params;
    params.prefetch = false;
    MemorySystem mem(params);
    EXPECT_EQ(mem.prefetcher(), nullptr);
}

} // namespace
} // namespace pubs::mem
