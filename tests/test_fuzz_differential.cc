/**
 * @file
 * Differential fuzzing of the pipeline against the functional emulator.
 *
 * A seeded generator builds random-but-well-formed programs over the
 * ISA builder (arithmetic, shifts, division, loads/stores to a private
 * data region, data-dependent forward branches, calls into leaf
 * functions), then each program runs through the full out-of-order
 * pipeline with the lockstep commit checker and the structural auditor
 * set to Throw, on both the base and the PUBS machine. Any divergence
 * between pipeline commits and the emulator's architectural state is a
 * test failure; the failing seed is shrunk (fewer blocks, shorter
 * blocks) before being reported so the repro in the assert message is
 * as small as possible.
 *
 * Program count and per-program instruction budget can be overridden
 * with PUBS_FUZZ_PROGRAMS / PUBS_FUZZ_INSTS for longer offline runs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/checksum.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "emu/emulator.hh"
#include "isa/builder.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/run_pool.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace pubs
{
namespace
{

struct FuzzParams
{
    unsigned blocks = 4;      ///< basic blocks per loop body
    unsigned opsPerBlock = 6; ///< straight-line ops per block
};

constexpr Addr dataBase = 0x10000;
constexpr unsigned dataSlots = 64;

RegId
randomDst(Rng &rng)
{
    // r0 stays zero, r1 is the loop counter, r2 the data base and r31
    // the link register; everything else is fair game.
    return (RegId)(3 + rng.below(12));
}

RegId
randomSrc(Rng &rng)
{
    return (RegId)rng.below(15); // r0..r14
}

void
emitRandomOp(isa::ProgramBuilder &b, Rng &rng)
{
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2: {
        static const isa::Opcode rrr[] = {
            isa::Opcode::Add, isa::Opcode::Sub, isa::Opcode::And,
            isa::Opcode::Or,  isa::Opcode::Xor, isa::Opcode::Slt,
            isa::Opcode::Sll,
        };
        b.rrr(rrr[rng.below(sizeof(rrr) / sizeof(rrr[0]))],
              randomDst(rng), randomSrc(rng), randomSrc(rng));
        break;
      }
      case 3: {
        // Multiply / divide / remainder; the emulator defines the
        // divide-by-zero cases, so no operand screening is needed.
        static const isa::Opcode muldiv[] = {
            isa::Opcode::Mul, isa::Opcode::Div, isa::Opcode::Rem,
        };
        b.rrr(muldiv[rng.below(3)], randomDst(rng), randomSrc(rng),
              randomSrc(rng));
        break;
      }
      case 4:
      case 5: {
        static const isa::Opcode rri[] = {
            isa::Opcode::Addi, isa::Opcode::Andi, isa::Opcode::Xori,
            isa::Opcode::Slti,
        };
        b.rri(rri[rng.below(4)], randomDst(rng), randomSrc(rng),
              (int64_t)rng.below(256) - 128);
        break;
      }
      case 6:
        b.rri(rng.chance(0.5) ? isa::Opcode::Slli : isa::Opcode::Srli,
              randomDst(rng), randomSrc(rng), (int64_t)rng.below(64));
        break;
      case 7:
      case 8:
        b.ld(randomDst(rng), 2, (int64_t)(8 * rng.below(dataSlots)));
        break;
      default:
        b.st(randomSrc(rng), 2, (int64_t)(8 * rng.below(dataSlots)));
        break;
    }
}

/**
 * Build a random program: an effectively-infinite outer loop whose body
 * is @p p.blocks blocks of random ops, some guarded by data-dependent
 * forward branches, some calling one of three random leaf functions.
 */
isa::Program
makeRandomProgram(uint64_t seed, const FuzzParams &p)
{
    Rng rng(seed);
    isa::ProgramBuilder b("fuzz_" + std::to_string(seed));

    for (unsigned slot = 0; slot < dataSlots; ++slot) {
        // Mix tiny values (interesting for div/rem and branches) with
        // full-width noise.
        uint64_t value =
            rng.chance(0.3) ? rng.below(8) : rng.next();
        b.data64(dataBase + 8ull * slot, value);
    }

    b.li(2, (int64_t)dataBase);
    for (RegId r = 3; r <= 14; ++r) {
        int64_t value = rng.chance(0.5) ? (int64_t)rng.below(16)
                                        : (int64_t)(int32_t)rng.next();
        b.li(r, value);
    }
    b.li(1, 100000); // far more iterations than any insts budget

    static const isa::Opcode branches[] = {
        isa::Opcode::Beq, isa::Opcode::Bne, isa::Opcode::Blt,
        isa::Opcode::Bge,
    };

    unsigned nextLabel = 0;
    b.label("loop");
    for (unsigned block = 0; block < p.blocks; ++block) {
        std::string skip;
        if (rng.chance(0.4)) {
            // A data-dependent forward branch over this block.
            skip = "skip" + std::to_string(nextLabel++);
            b.branch(branches[rng.below(4)], randomSrc(rng),
                     randomSrc(rng), skip);
        }
        for (unsigned op = 0; op < p.opsPerBlock; ++op)
            emitRandomOp(b, rng);
        if (rng.chance(0.15))
            b.jal(31, "leaf" + std::to_string(rng.below(3)));
        if (!skip.empty())
            b.label(skip);
    }
    b.addi(1, 1, -1);
    b.bne(1, 0, "loop");
    b.halt();

    for (unsigned leaf = 0; leaf < 3; ++leaf) {
        b.label("leaf" + std::to_string(leaf));
        emitRandomOp(b, rng);
        emitRandomOp(b, rng);
        b.jr(31);
    }
    return b.build();
}

/**
 * Run @p program with the lockstep checker and auditor throwing.
 * @return "" on success, else the divergence description.
 */
std::string
runChecked(const isa::Program &program, sim::Machine machine,
           uint64_t insts)
{
    cpu::CoreParams params = sim::makeConfig(machine);
    params.checkPolicy = CheckPolicy::Throw;
    params.auditPolicy = CheckPolicy::Throw;
    params.heartbeatInterval = 0;
    try {
        sim::Simulator simulator(params, program);
        sim::RunResult result = simulator.run(0, insts);
        if (result.instructions == 0)
            return "committed zero instructions";
    } catch (const SimError &error) {
        return std::string(SimError::kindName(error.kind())) + ": " +
               error.what();
    }
    return "";
}

/** @return "" if @p seed passes on both machines, else a description. */
std::string
checkSeed(uint64_t seed, const FuzzParams &p, uint64_t insts)
{
    isa::Program program = makeRandomProgram(seed, p);
    for (sim::Machine machine :
         {sim::Machine::Base, sim::Machine::Pubs}) {
        std::string error = runChecked(program, machine, insts);
        if (!error.empty()) {
            return std::string("machine=") + sim::machineName(machine) +
                   ": " + error;
        }
    }
    return "";
}

/** Shrink a failing configuration while it keeps failing. */
FuzzParams
shrink(uint64_t seed, FuzzParams p, uint64_t insts)
{
    for (bool progress = true; progress;) {
        progress = false;
        FuzzParams candidates[2] = {p, p};
        candidates[0].blocks = p.blocks / 2;
        candidates[1].opsPerBlock = p.opsPerBlock / 2;
        for (const FuzzParams &candidate : candidates) {
            if (candidate.blocks < 1 || candidate.opsPerBlock < 1)
                continue;
            if (!checkSeed(seed, candidate, insts).empty()) {
                p = candidate;
                progress = true;
                break;
            }
        }
    }
    return p;
}

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value && *value ? std::strtoull(value, nullptr, 10) : fallback;
}

TEST(FuzzDifferential, GeneratorIsDeterministic)
{
    FuzzParams p;
    isa::Program a = makeRandomProgram(7, p);
    isa::Program b = makeRandomProgram(7, p);
    EXPECT_EQ(a.listing(), b.listing());
    EXPECT_NE(a.listing(), makeRandomProgram(8, p).listing());
}

TEST(FuzzDifferential, CorruptedTracesNeverCrashTheReader)
{
    // Corruption mode: a well-formed trace, then seeded truncations and
    // bit flips. Every mutation must either read back cleanly or throw
    // a structured SimError — never crash, hang, or misdecode into an
    // out-of-bounds access.
    std::string path =
        (std::filesystem::temp_directory_path() / "pubs_fuzz_corrupt.trc")
            .string();
    isa::Program program = makeRandomProgram(11, FuzzParams{});
    {
        trace::TraceWriter writer(path);
        emu::Emulator emu(program);
        trace::DynInst di;
        for (int i = 0; i < 200 && emu.step(di); ++i)
            writer.write(di);
        writer.close();
    }
    std::ifstream in(path, std::ios::binary);
    std::string pristine((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    ASSERT_GT(pristine.size(), 64u);

    Rng rng(0xc0221);
    const uint64_t rounds = envOr("PUBS_FUZZ_CORRUPT_ROUNDS", 300);
    for (uint64_t round = 0; round < rounds; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        std::string mutated = pristine;
        if (rng.chance(0.5)) {
            mutated.resize(rng.below(mutated.size()));
        } else {
            for (uint64_t flips = 1 + rng.below(4); flips; --flips) {
                size_t at = (size_t)rng.below(mutated.size());
                mutated[at] = (char)(mutated[at] ^ (1u << rng.below(8)));
            }
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(mutated.data(), (std::streamsize)mutated.size());
        out.close();

        try {
            trace::TraceReader reader(path);
            trace::DynInst di;
            while (reader.next(di)) {
            }
        } catch (const SimError &) {
            // Structured rejection is exactly the contract.
        }
    }
    std::remove(path.c_str());
}

TEST(FuzzDifferential, CorruptedCheckpointsNeverCrashTheLoader)
{
    // Mirror of the trace round for the checkpoint container: a
    // pristine checkpoint, then seeded truncations, bit flips, and a
    // stale-version rewrite. Every mutation must either restore cleanly
    // (the mutation missed the validated bytes) or throw a structured
    // SimError — never crash, hang, or silently restore wrong state.
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = sim::makeConfig(sim::Machine::Pubs);
    std::string pristine;
    {
        sim::Simulator saver(params, w.program);
        saver.fastForward(4000);
        pristine = saver.saveCheckpoint("pubs");
    }
    ASSERT_GT(pristine.size(), 64u);

    sim::Simulator victim(params, w.program);
    Rng rng(0xc0222);
    const uint64_t rounds = envOr("PUBS_FUZZ_CORRUPT_ROUNDS", 300);
    for (uint64_t round = 0; round < rounds; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        std::string mutated = pristine;
        if (round == 0) {
            // A well-framed container from a future format version:
            // version field rewritten, header CRC recomputed.
            for (int i = 0; i < 4; ++i)
                mutated[8 + i] = (char)((2u >> (8 * i)) & 0xff);
            uint32_t headerCrc = crc32(mutated.data(), 24);
            for (int i = 0; i < 4; ++i)
                mutated[24 + i] =
                    (char)((headerCrc >> (8 * i)) & 0xff);
        } else if (rng.chance(0.5)) {
            mutated.resize(rng.below(mutated.size()));
        } else {
            for (uint64_t flips = 1 + rng.below(4); flips; --flips) {
                size_t at = (size_t)rng.below(mutated.size());
                mutated[at] = (char)(mutated[at] ^ (1u << rng.below(8)));
            }
        }
        try {
            victim.restoreCheckpoint(mutated);
            // Accepting is only sound if the bytes still validate;
            // re-reading the meta proves the container is well-formed.
            (void)sim::readCheckpointMeta(mutated);
        } catch (const SimError &) {
            // Structured rejection is exactly the contract.
        }
    }

    // The victim must still be usable after the barrage: a clean
    // restore and a detailed run work.
    victim.restoreCheckpoint(pristine);
    sim::RunResult result = victim.run(500, 2000);
    EXPECT_GT(result.instructions, 0u);
}

TEST(FuzzDifferential, RandomProgramsMatchEmulatorInLockstep)
{
    const uint64_t count = envOr("PUBS_FUZZ_PROGRAMS", 200);
    const uint64_t insts = envOr("PUBS_FUZZ_INSTS", 3000);
    const uint64_t baseSeed = 0xf0220000ull;
    const FuzzParams defaults;

    // Each seed is independent, so fan the batch out over the pool;
    // failures land in per-seed slots and are reported in seed order.
    std::vector<std::string> failures(count);
    sim::RunPool pool;
    sim::parallelFor(pool, count, [&](size_t i) {
        failures[i] = checkSeed(baseSeed + i, defaults, insts);
    });

    for (uint64_t i = 0; i < count; ++i) {
        if (failures[i].empty())
            continue;
        uint64_t seed = baseSeed + i;
        FuzzParams reduced = shrink(seed, defaults, insts);
        std::string error = checkSeed(seed, reduced, insts);
        if (error.empty()) // shrinking lost the bug; report unshrunk
            error = failures[i];
        FAIL() << "differential fuzz failure\n"
               << "  seed:   " << seed << "\n"
               << "  params: blocks=" << reduced.blocks
               << " opsPerBlock=" << reduced.opsPerBlock
               << " insts=" << insts << "\n"
               << "  error:  " << error << "\n"
               << "repro program:\n"
               << makeRandomProgram(seed, reduced).listing();
    }
}

} // namespace
} // namespace pubs
