/**
 * @file
 * Simulator-driver tests: config presets, Table IV size scaling, run
 * results, and trace-driven simulation.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "emu/emulator.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace pubs::sim
{
namespace
{

TEST(Config, MachinePresets)
{
    cpu::CoreParams base = makeConfig(Machine::Base);
    EXPECT_FALSE(base.usePubs);
    EXPECT_FALSE(base.ageMatrix);

    cpu::CoreParams pubs = makeConfig(Machine::Pubs);
    EXPECT_TRUE(pubs.usePubs);
    EXPECT_FALSE(pubs.ageMatrix);

    cpu::CoreParams age = makeConfig(Machine::Age);
    EXPECT_FALSE(age.usePubs);
    EXPECT_TRUE(age.ageMatrix);

    cpu::CoreParams both = makeConfig(Machine::PubsAge);
    EXPECT_TRUE(both.usePubs);
    EXPECT_TRUE(both.ageMatrix);
}

TEST(Config, MachineNames)
{
    EXPECT_STREQ(machineName(Machine::Base), "base");
    EXPECT_STREQ(machineName(Machine::Pubs), "pubs");
    EXPECT_STREQ(machineName(Machine::Age), "age");
    EXPECT_STREQ(machineName(Machine::PubsAge), "pubs+age");
}

TEST(Config, TableIDefaults)
{
    cpu::CoreParams p = makeConfig(Machine::Base);
    EXPECT_EQ(p.fetchWidth, 4u);
    EXPECT_EQ(p.robEntries, 128u);
    EXPECT_EQ(p.iqEntries, 64u);
    EXPECT_EQ(p.lsqEntries, 64u);
    EXPECT_EQ(p.intPhysRegs, 128u);
    EXPECT_EQ(p.numIntAlu, 2u);
    EXPECT_EQ(p.numIntMulDiv, 1u);
    EXPECT_EQ(p.numLdSt, 2u);
    EXPECT_EQ(p.numFpu, 2u);
    EXPECT_EQ(p.recoveryPenalty, 10u);
    EXPECT_EQ(p.btbSets, 2048u);
    EXPECT_EQ(p.btbWays, 4u);
}

TEST(Config, TableIvScaling)
{
    auto small = cpu::CoreParams::scaled(cpu::SizeClass::Small);
    auto medium = cpu::CoreParams::scaled(cpu::SizeClass::Medium);
    auto large = cpu::CoreParams::scaled(cpu::SizeClass::Large);
    auto huge = cpu::CoreParams::scaled(cpu::SizeClass::Huge);
    EXPECT_LT(small.iqEntries, medium.iqEntries);
    EXPECT_LT(medium.iqEntries, large.iqEntries);
    EXPECT_LT(large.iqEntries, huge.iqEntries);
    EXPECT_LT(small.issueWidth, huge.issueWidth);
    EXPECT_EQ(medium.iqEntries, 64u); // medium == Table I
    // Non-scaled parameters stay at defaults.
    EXPECT_EQ(huge.recoveryPenalty, 10u);
    EXPECT_EQ(huge.memory.l2.sizeBytes, 2u * 1024 * 1024);
}

TEST(Config, SizeClassNames)
{
    EXPECT_STREQ(cpu::sizeClassName(cpu::SizeClass::Small), "small");
    EXPECT_STREQ(cpu::sizeClassName(cpu::SizeClass::Huge), "huge");
}

TEST(Config, DescribeMentionsKeyComponents)
{
    std::string text = makeConfig(Machine::Pubs).describe();
    EXPECT_NE(text.find("perceptron"), std::string::npos);
    EXPECT_NE(text.find("PUBS"), std::string::npos);
    EXPECT_NE(text.find("6 priority entries"), std::string::npos);
}

TEST(Simulator, RunResultFieldsArePopulated)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    RunResult r =
        simulate(makeConfig(Machine::Pubs), w.program, 20000, 80000);
    EXPECT_EQ(r.workload, "sjeng_like");
    EXPECT_EQ(r.instructions, 80000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.branchMpki, 0.0);
    EXPECT_GT(r.avgMisspecPenalty, 0.0);
    EXPECT_GT(r.unconfidentBranchRate, 0.0);
}

TEST(Simulator, SpeedupOver)
{
    RunResult a, b;
    a.ipc = 1.2;
    b.ipc = 1.0;
    EXPECT_NEAR(a.speedupOver(b), 1.2, 1e-12);
    EXPECT_NEAR(b.speedupOver(a), 1.0 / 1.2, 1e-12);
}

TEST(Simulator, WarmupIsExcludedFromStats)
{
    wl::Workload w = wl::makeWorkload("hmmer_like");
    RunResult warm =
        simulate(makeConfig(Machine::Base), w.program, 50000, 50000);
    EXPECT_EQ(warm.instructions, 50000u);
}

TEST(Simulator, TraceDrivenRunMatchesWorkload)
{
    // Record a short trace from the emulator, then drive the pipeline
    // from the file: the SPEC-substitution path for external traces.
    wl::Workload w = wl::makeWorkload("hmmer_like");
    std::string path =
        (std::filesystem::temp_directory_path() / "pubs_sim.trc").string();
    {
        emu::Emulator emu(w.program);
        trace::TraceWriter writer(path);
        trace::DynInst di;
        for (int i = 0; i < 50000 && emu.step(di); ++i)
            writer.write(di);
        writer.close();
    }
    Simulator sim(makeConfig(Machine::Base),
                  std::make_unique<trace::TraceReader>(path));
    RunResult r = sim.run(0, 50000);
    EXPECT_EQ(r.instructions, 50000u);
    EXPECT_GT(r.ipc, 0.0);
    std::remove(path.c_str());
}

TEST(Simulator, PubsAgeCombinationRuns)
{
    wl::Workload w = wl::makeWorkload("gobmk_like");
    RunResult r =
        simulate(makeConfig(Machine::PubsAge), w.program, 20000, 60000);
    EXPECT_GT(r.ipc, 0.0);
}

} // namespace
} // namespace pubs::sim
