/**
 * @file
 * Top-down CPI-stack tests: the CpiStack container itself (merge,
 * deltas, stat publication, formatting), closed-form component
 * assertions on hand-written kernels, the adds-up invariant across the
 * whole workload suite on every machine (straight and sampled, with the
 * structural auditor armed so its mid-cycle accounting is exercised),
 * and the per-branch attribution rows surfaced through RunResult.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/stats.hh"
#include "cpu/cpi_stack.hh"
#include "cpu/pipeline.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "sim/sampling.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace pubs::cpu
{
namespace
{

using sim::Machine;
using sim::makeConfig;

TEST(CpiStack, ComponentNamesAreStable)
{
    EXPECT_STREQ(cpiComponentName(CpiComponent::Base), "base");
    EXPECT_STREQ(cpiComponentName(CpiComponent::MemDram), "mem_dram");
    EXPECT_STREQ(cpiComponentName(CpiComponent::PriorityStall),
                 "priority_stall");
    EXPECT_STREQ(cpiComponentName(CpiComponent::Execute), "execute");
    // Every component has a distinct, non-placeholder name.
    for (size_t i = 0; i < numCpiComponents; ++i) {
        std::string name = cpiComponentName((CpiComponent)i);
        EXPECT_NE(name, "?");
        for (size_t j = i + 1; j < numCpiComponents; ++j)
            EXPECT_NE(name, cpiComponentName((CpiComponent)j));
    }
}

TEST(CpiStack, AddTotalMergeDelta)
{
    CpiStack a;
    a.add(CpiComponent::Base, 10);
    a.add(CpiComponent::Frontend, 3);
    a.add(CpiComponent::Base); // default n = 1
    EXPECT_EQ(a[CpiComponent::Base], 11u);
    EXPECT_EQ(a.total(), 14u);

    CpiStack b;
    b.add(CpiComponent::Base, 4);
    b.add(CpiComponent::MemDram, 6);
    b.merge(a);
    EXPECT_EQ(b[CpiComponent::Base], 15u);
    EXPECT_EQ(b[CpiComponent::Frontend], 3u);
    EXPECT_EQ(b[CpiComponent::MemDram], 6u);
    EXPECT_EQ(b.total(), a.total() + 10u);

    CpiStack delta = b.deltaSince(a);
    EXPECT_EQ(delta[CpiComponent::Base], 4u);
    EXPECT_EQ(delta[CpiComponent::Frontend], 0u);
    EXPECT_EQ(delta[CpiComponent::MemDram], 6u);
    EXPECT_EQ(delta.total(), 10u);
}

TEST(CpiStack, FillPublishesCyclesAndCpi)
{
    CpiStack s;
    s.add(CpiComponent::Base, 75);
    s.add(CpiComponent::Execute, 25);

    StatGroup group("cpi_stack");
    s.fill(group, 50);
    EXPECT_EQ(group.get("total_cycles"), 100.0);
    EXPECT_EQ(group.get("base_cycles"), 75.0);
    EXPECT_EQ(group.get("execute_cycles"), 25.0);
    EXPECT_EQ(group.get("mem_l2_cycles"), 0.0);
    EXPECT_DOUBLE_EQ(group.get("cpi_base"), 1.5);
    EXPECT_DOUBLE_EQ(group.get("cpi_execute"), 0.5);

    // Zero committed instructions must not divide by zero.
    StatGroup empty("cpi_stack");
    s.fill(empty, 0);
    EXPECT_EQ(empty.get("cpi_base"), 0.0);
}

TEST(CpiStack, FormatListsEveryComponent)
{
    CpiStack s;
    s.add(CpiComponent::Base, 90);
    s.add(CpiComponent::MemDram, 10);
    std::string text = s.format(80);
    EXPECT_NE(text.find("100 cycles"), std::string::npos);
    EXPECT_NE(text.find("80 committed"), std::string::npos);
    for (size_t i = 0; i < numCpiComponents; ++i)
        EXPECT_NE(text.find(cpiComponentName((CpiComponent)i)),
                  std::string::npos)
            << cpiComponentName((CpiComponent)i);
    EXPECT_NE(text.find("90.0%"), std::string::npos);
}

/** Run @p source to drain with the auditor throwing; return stats. */
PipelineStats
runToDrain(const std::string &source, CoreParams params)
{
    params.auditPolicy = CheckPolicy::Throw;
    params.auditInterval = 64;
    isa::Program prog = isa::assemble(source);
    emu::Emulator emu(prog);
    Pipeline pipe(params, emu);
    pipe.run(UINT64_MAX / 2);
    EXPECT_TRUE(pipe.drained());
    return pipe.stats();
}

TEST(CpiStackClosedForm, StraightLineAluHasNoMemOrPriorityCycles)
{
    // Pure register ALU work: no loads, no stores, no PUBS — the memory,
    // LSQ, and priority components must be exactly zero, and every
    // elapsed cycle must be attributed.
    std::string src = "li r9, 0\nli r10, 200\nloop:\n";
    for (int i = 2; i <= 20; ++i)
        src += "addi r" + std::to_string(i % 8 + 1) + ", r1, " +
               std::to_string(i) + "\n";
    src += "addi r9, r9, 1\nblt r9, r10, loop\nhalt\n";

    PipelineStats s = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_EQ(s.cpi.total(), s.cycles);
    EXPECT_EQ(s.cpi[CpiComponent::MemL2], 0u);
    EXPECT_EQ(s.cpi[CpiComponent::MemDram], 0u);
    EXPECT_EQ(s.cpi[CpiComponent::LsqFull], 0u);
    EXPECT_EQ(s.cpi[CpiComponent::PriorityStall], 0u);
    EXPECT_GT(s.cpi[CpiComponent::Base], 0u);
    // Useful-dispatch cycles can never exceed committed instructions.
    EXPECT_LE(s.cpi[CpiComponent::Base], s.committed);
}

TEST(CpiStackClosedForm, SerialChainIsNotMemoryOrBranchBound)
{
    // A pure serial dependence chain with no branches: the stack must
    // contain no branch-recovery and no memory cycles; the stall side
    // is execute/structure/frontend time.
    std::string src = "li r1, 0\n";
    for (int i = 0; i < 64; ++i)
        src += "addi r1, r1, 1\n";
    src += "halt\n";

    PipelineStats s = runToDrain(src, makeConfig(Machine::Base));
    EXPECT_EQ(s.cpi.total(), s.cycles);
    EXPECT_EQ(s.cpi[CpiComponent::BranchRecovery], 0u);
    EXPECT_EQ(s.cpi[CpiComponent::MemL2], 0u);
    EXPECT_EQ(s.cpi[CpiComponent::MemDram], 0u);
    EXPECT_EQ(s.cpi[CpiComponent::PriorityStall], 0u);
}

TEST(CpiStackClosedForm, RecoveryCyclesTrackMispredicts)
{
    // A data-dependent unpredictable branch: every squash suspends
    // fetch for the fixed Table I recovery penalty, so the recovery
    // component grows with the misprediction count and is bounded by
    // mispredicts * recoveryPenalty.
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = makeConfig(Machine::Base);
    params.auditPolicy = CheckPolicy::Throw;
    sim::RunResult r = sim::simulate(params, w.program, 5000, 20000);

    const PipelineStats &s = r.pipeline;
    uint64_t mispredicts = s.condMispredicts + s.indirectMispredicts;
    ASSERT_GT(mispredicts, 0u);
    EXPECT_GT(s.cpi[CpiComponent::BranchRecovery], 0u);
    EXPECT_LE(s.cpi[CpiComponent::BranchRecovery],
              mispredicts * (uint64_t)params.recoveryPenalty);
}

TEST(CpiStackClosedForm, PriorityStallOnlyOnPubsMachines)
{
    wl::Workload w = wl::makeWorkload("astar_like");
    cpu::CoreParams base = makeConfig(Machine::Base);
    cpu::CoreParams pubs = makeConfig(Machine::Pubs);
    base.auditPolicy = pubs.auditPolicy = CheckPolicy::Throw;

    sim::RunResult rb = sim::simulate(base, w.program, 5000, 20000);
    sim::RunResult rp = sim::simulate(pubs, w.program, 5000, 20000);

    EXPECT_EQ(rb.pipeline.cpi[CpiComponent::PriorityStall], 0u);
    // The stall policy's cost shows up as the dedicated component, and
    // never exceeds the raw blocked-cycle counter (a cycle that also
    // dispatched an earlier instruction is Base, not PriorityStall).
    EXPECT_LE(rp.pipeline.cpi[CpiComponent::PriorityStall],
              rp.pipeline.priorityStallCycles);
}

TEST(CpiStackInvariant, AddsUpAcrossSuiteOnEveryMachine)
{
    // The hard invariant: components partition the cycle count, on
    // every workload in the suite, base and PUBS machine alike, with
    // the structural auditor (which checks the same thing mid-run,
    // including mid-cycle after squashes) set to throw.
    for (const std::string &name : wl::suiteNames()) {
        wl::Workload w = wl::makeWorkload(name);
        for (Machine m : {Machine::Base, Machine::Pubs}) {
            cpu::CoreParams params = makeConfig(m);
            params.auditPolicy = CheckPolicy::Throw;
            params.auditInterval = 256;
            sim::RunResult r =
                sim::simulate(params, w.program, 2000, 8000);
            EXPECT_EQ(r.pipeline.cpi.total(), r.pipeline.cycles)
                << name << " on " << sim::machineName(m);
            EXPECT_GT(r.pipeline.cpi[CpiComponent::Base], 0u)
                << name << " on " << sim::machineName(m);
        }
    }
}

TEST(CpiStackInvariant, SampledRunsPoolWindowStacks)
{
    // A sampled run's stack is the pool of its windows' stacks, so the
    // invariant holds against the pooled cycle count.
    sim::SamplePlan plan;
    plan.windows = 3;
    plan.warmupInsts = 500;
    plan.measureInsts = 2000;
    plan.periodInsts = 6000;

    for (const std::string &name : {std::string("sjeng_like"),
                                    std::string("mcf_like")}) {
        wl::Workload w = wl::makeWorkload(name);
        for (Machine m : {Machine::Base, Machine::Pubs}) {
            cpu::CoreParams params = makeConfig(m);
            sim::RunResult r = sim::simulateSampled(params, w.program,
                                                    plan, nullptr,
                                                    sim::machineName(m));
            EXPECT_TRUE(r.sampled);
            EXPECT_EQ(r.pipeline.cpi.total(), r.pipeline.cycles)
                << name << " on " << sim::machineName(m);
        }
    }
}

TEST(BranchProfile, RowsAreInternallyConsistent)
{
    // With telemetry on, RunResult carries the per-branch table; each
    // row's confidence×outcome quadrant partitions its commits, its
    // mispredict count matches the wrong quadrants, and slice coverage
    // never exceeds the slice size.
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = makeConfig(Machine::Pubs);
    params.telemetry = true;
    sim::RunResult r = sim::simulate(params, w.program, 5000, 20000);

    ASSERT_FALSE(r.branchProfile.empty());
    ASSERT_LE(r.branchProfile.size(), sim::maxBranchProfileRows);
    uint64_t lastMispredicts = UINT64_MAX;
    for (const sim::BranchProfileRow &row : r.branchProfile) {
        EXPECT_GT(row.commits, 0u);
        EXPECT_EQ(row.confCorrect + row.confWrong + row.unconfCorrect +
                      row.unconfWrong,
                  row.commits);
        EXPECT_LE(row.mispredicts, row.commits);
        EXPECT_LE(row.sliceCovered, row.sliceInsts);
        // Rows arrive sorted by descending mispredict count.
        EXPECT_LE(row.mispredicts, lastMispredicts);
        lastMispredicts = row.mispredicts;
    }
}

TEST(BranchProfile, EmptyWithoutTelemetry)
{
    wl::Workload w = wl::makeWorkload("sjeng_like");
    cpu::CoreParams params = makeConfig(Machine::Pubs);
    sim::RunResult r = sim::simulate(params, w.program, 2000, 8000);
    EXPECT_TRUE(r.branchProfile.empty());
}

} // namespace
} // namespace pubs::cpu
