/**
 * @file
 * Example: the Section III-B3 mode switch in action. A memory-bound
 * pointer-chasing workload needs every IQ entry for memory-level
 * parallelism; reserving priority entries would hurt. The mode switch
 * observes the LLC MPKI and turns PUBS off automatically.
 */

#include <cstdio>

#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace pubs;

    const uint64_t warmup = 50000;
    const uint64_t measure = 300000;

    for (const char *name : {"mcf_like", "soplex_like", "sjeng_like"}) {
        wl::Workload w = wl::makeWorkload(name);

        sim::RunResult base = sim::simulate(
            sim::makeConfig(sim::Machine::Base), w.program, warmup,
            measure);

        cpu::CoreParams withSwitch = sim::makeConfig(sim::Machine::Pubs);
        sim::RunResult on =
            sim::simulate(withSwitch, w.program, warmup, measure);

        cpu::CoreParams noSwitch = withSwitch;
        noSwitch.pubs.modeSwitch = false;
        sim::RunResult off =
            sim::simulate(noSwitch, w.program, warmup, measure);

        std::printf("%-12s  LLC MPKI %6.1f | speedup: switch on %+5.1f%%"
                    ", switch off %+5.1f%% | PUBS active %.0f%% of "
                    "intervals\n",
                    name, base.llcMpki,
                    (on.speedupOver(base) - 1.0) * 100.0,
                    (off.speedupOver(base) - 1.0) * 100.0,
                    on.pubsEnabledFraction * 100.0);
    }

    std::printf("\nThe memory-bound programs keep their MLP because the "
                "switch idles PUBS;\nthe compute-bound D-BP program "
                "keeps its full PUBS gain.\n");
    return 0;
}
