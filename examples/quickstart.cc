/**
 * @file
 * Quickstart: build a branch-heavy workload, run it on the baseline core
 * and on a PUBS-enabled core, and print the speedup — the paper's
 * headline experiment in ~30 lines.
 */

#include <cstdio>
#include <cstdlib>

#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace pubs;

    // A sjeng-like workload: compute-bound with hard-to-predict branches.
    wl::Workload workload = wl::makeWorkload("sjeng_like");

    const uint64_t warmup = 100000;
    const uint64_t measure = 500000;

    sim::RunResult base = sim::simulate(
        sim::makeConfig(sim::Machine::Base), workload.program, warmup,
        measure);
    sim::RunResult pubs = sim::simulate(
        sim::makeConfig(sim::Machine::Pubs), workload.program, warmup,
        measure);

    if (std::getenv("PUBS_QUICKSTART_VERBOSE")) {
        std::printf("-- detail (base vs pubs) --\n");
        std::printf("avg IQ wait       : %.2f -> %.2f\n", base.avgIqWait,
                    pubs.avgIqWait);
        std::printf("priority stalls   : %llu cycles\n",
                    (unsigned long long)pubs.priorityStallCycles);
        std::printf("unconfident rate  : %.2f\n",
                    pubs.unconfidentBranchRate);
        std::printf("slice insts       : %llu of %llu committed\n",
                    (unsigned long long)
                        pubs.pipeline.priorityDispatches,
                    (unsigned long long)pubs.pipeline.committed);
        std::printf("issue conflicts   : %llu (base) %llu (pubs) cycles\n",
                    (unsigned long long)base.pipeline.issueConflictCycles,
                    (unsigned long long)pubs.pipeline.issueConflictCycles);
    }

    std::printf("workload          : %s\n", workload.name.c_str());
    std::printf("branch MPKI       : %.1f\n", base.branchMpki);
    std::printf("base IPC          : %.3f\n", base.ipc);
    std::printf("PUBS IPC          : %.3f\n", pubs.ipc);
    std::printf("speedup           : %+.1f%%\n",
                (pubs.speedupOver(base) - 1.0) * 100.0);
    std::printf("misspec. penalty  : %.1f -> %.1f cycles\n",
                base.avgMisspecPenalty, pubs.avgMisspecPenalty);
    return 0;
}
