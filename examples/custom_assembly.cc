/**
 * @file
 * Example: write a program in the micro-ISA's text assembly, run it
 * functionally, capture a trace, and replay that trace through the
 * timing model — the workflow for bringing your own (open) traces.
 */

#include <cstdio>
#include <filesystem>

#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace
{

// A toy checksum kernel with one data-dependent branch: the kind of
// loop PUBS accelerates. The data-dependent `blt` is hard to predict;
// its slice is ld -> xor -> blt.
const char *const kernel = R"(
        li   r2, 0x100000     # array base
        li   r10, 1023        # index mask
        li   r20, 0x20000000  # branch threshold (~50% taken)
        li   r21, 0x3fffffff  # value mask
        li   r1, 0            # i
        li   r11, 0           # checksum
    loop:
        and  r4, r1, r10
        slli r5, r4, 3
        add  r5, r5, r2
        ld   r3, r5, 0
        xor  r6, r3, r11
        and  r6, r6, r21
        blt  r6, r20, light
        mul  r7, r3, r3       # heavy arm
        add  r11, r11, r7
        j    next
    light:
        xor  r11, r11, r3
    next:
        addi r1, r1, 1
        addi r12, r12, 1      # independent filler
        addi r13, r13, 3
        add  r14, r20, r20
        j    loop
)";

} // namespace

int
main()
{
    using namespace pubs;

    // Assemble and attach input data.
    isa::Program prog = isa::assemble(kernel, "checksum");
    Rng rng(42);
    for (int i = 0; i < 1024; ++i)
        prog.addData64(0x100000 + (Addr)i * 8, rng.below(1u << 30));

    std::printf("=== program listing (head) ===\n");
    std::string listing = prog.listing();
    std::printf("%.*s...\n\n", 420, listing.c_str());

    // Functional run + trace capture.
    std::string path =
        (std::filesystem::temp_directory_path() / "checksum.trc").string();
    {
        emu::Emulator emu(prog);
        trace::TraceWriter writer(path);
        trace::DynInst di;
        for (int i = 0; i < 400000 && emu.step(di); ++i)
            writer.write(di);
        writer.close();
        std::printf("captured %llu instructions to %s\n",
                    (unsigned long long)writer.recordsWritten(),
                    path.c_str());
        std::printf("architectural checksum r11 = %#llx\n\n",
                    (unsigned long long)emu.intReg(11));
    }

    // Timing simulation straight from the emulator...
    sim::RunResult live = sim::simulate(
        sim::makeConfig(sim::Machine::Pubs), prog, 50000, 200000);
    std::printf("emulator-driven   : IPC %.3f, branch MPKI %.1f\n",
                live.ipc, live.branchMpki);

    // ...and from the captured trace (wrong-path modelling degrades to
    // redirect stalls because a trace has no static code to fetch).
    sim::Simulator fromTrace(
        sim::makeConfig(sim::Machine::Pubs),
        std::make_unique<trace::TraceReader>(path));
    sim::RunResult replay = fromTrace.run(50000, 200000);
    std::printf("trace-driven      : IPC %.3f, branch MPKI %.1f\n",
                replay.ipc, replay.branchMpki);

    std::remove(path.c_str());
    return 0;
}
