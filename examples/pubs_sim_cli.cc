/**
 * @file
 * A command-line driver for one-off simulations:
 *
 *     pubs_sim_cli [options]
 *       --workload <name|path.trc>   suite workload or trace file
 *       --machine  <base|pubs|age|pubs+age>
 *       --size     <small|medium|large|huge>
 *       --insts    <n>               measured instructions (default 1M)
 *       --warmup   <n>               warmup instructions (default 200K)
 *       --seed     <n>
 *       --priority-entries <n>       PUBS partition size
 *       --conf-bits <n>              confidence counter width
 *       --no-mode-switch             disable the LLC-MPKI mode switch
 *       --non-stall                  non-stall dispatch policy
 *       --distributed-iq             Section III-C2 distributed IQ
 *       --iq <random|shifting|circular>
 *       --check <off|warn|throw|abort>  checker + audit policy
 *       --check lockstep             verify every suite workload with the
 *                                    lockstep checker and the structural
 *                                    auditor; PASS/FAIL per workload
 *       --audit-interval <n>         cycles between structural audits
 *       --stats-json <path>          write the full stat registry as JSON
 *                                    (implies --telemetry)
 *       --pipeview <path>            write a gem5-O3PipeView pipeline
 *                                    trace (view with Konata)
 *       --telemetry                  collect PUBS slice telemetry and the
 *                                    branch-site profile
 *       --cpi-stack                  print the top-down CPI stack after
 *                                    the run (always collected; this
 *                                    only prints it)
 *       --branch-profile             print the per-static-branch cost
 *                                    profile (implies --telemetry)
 *       --heartbeat <cycles>         heartbeat interval (0 disables)
 *       --progress                   live progress readout (TTY meter,
 *                                    machine-readable lines otherwise)
 *                                    + progress.json; PUBS_PROGRESS=1
 *                                    enables it too
 *       --trace-events <path>        host-phase profile as Chrome trace
 *                                    events (open in Perfetto)
 *       --report <path>              self-contained HTML dashboard of
 *                                    this run (implies --telemetry)
 *       --jobs <n>                   worker threads for --check lockstep
 *                                    (default: hardware concurrency)
 *       --procs <n>                  fault-isolated worker *processes*
 *                                    for --check lockstep: a crashing or
 *                                    hanging workload is retried and at
 *                                    worst reported FAIL, never takes
 *                                    down the verifier (see PUBS_FAULT,
 *                                    PUBS_PROC_TIMEOUT, PUBS_PROC_RETRIES)
 *       --skip <n>                   functionally fast-forward n
 *                                    instructions before the run
 *       --save-checkpoint <path>     fast-forward (--skip), write a
 *                                    checkpoint, and exit
 *       --restore-checkpoint <path>  start from a checkpoint instead of
 *                                    from reset
 *       --sample <n>                 sampled simulation: n measurement
 *                                    windows stitched with 95% CIs
 *       --sample-period <n>          instructions between window starts
 *                                    (default: contiguous windows)
 *       --checkpoint-dir <dir>       content-addressed checkpoint cache
 *                                    reused across sampled runs
 *       --list                       list suite workloads and exit
 *
 * Prints the full pipeline stat group. Recoverable failures (bad
 * configuration, corrupt trace, checker divergence under --check throw)
 * print "error: ..." and exit 1 instead of aborting; so do workloads
 * whose worker process fails beyond retry under --procs.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include <cstdlib>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/profiler.hh"
#include "common/progress.hh"
#include "common/report.hh"
#include "common/stats.hh"
#include "cpu/telemetry.hh"
#include "emu/emulator.hh"
#include "sim/config.hh"
#include "sim/proc_pool.hh"
#include "sim/run_pool.hh"
#include "sim/sampling.hh"
#include "sim/simulator.hh"
#include "trace/pipeview.hh"
#include "trace/trace.hh"
#include "workloads/suite.hh"

namespace
{

using namespace pubs;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--workload W] [--machine M] [--size S]\n"
                 "          [--insts N] [--warmup N] [--seed N]\n"
                 "          [--priority-entries N] [--conf-bits N]\n"
                 "          [--no-mode-switch] [--non-stall]\n"
                 "          [--distributed-iq] [--iq KIND] [--list]\n"
                 "          [--check off|warn|throw|abort|lockstep]\n"
                 "          [--audit-interval N]\n"
                 "          [--stats-json PATH] [--pipeview PATH]\n"
                 "          [--telemetry] [--cpi-stack]\n"
                 "          [--branch-profile] [--heartbeat N] [--jobs N]\n"
                 "          [--procs N] [--progress]\n"
                 "          [--trace-events PATH] [--report PATH]\n"
                 "          [--skip N] [--save-checkpoint PATH]\n"
                 "          [--restore-checkpoint PATH] [--sample N]\n"
                 "          [--sample-period N] [--checkpoint-dir DIR]\n",
                 argv0);
    std::exit(2);
}

sim::Machine
parseMachine(const std::string &name)
{
    if (name == "base")
        return sim::Machine::Base;
    if (name == "pubs")
        return sim::Machine::Pubs;
    if (name == "age")
        return sim::Machine::Age;
    if (name == "pubs+age")
        return sim::Machine::PubsAge;
    fatal("unknown machine '%s'", name.c_str());
}

cpu::SizeClass
parseSize(const std::string &name)
{
    if (name == "small")
        return cpu::SizeClass::Small;
    if (name == "medium")
        return cpu::SizeClass::Medium;
    if (name == "large")
        return cpu::SizeClass::Large;
    if (name == "huge")
        return cpu::SizeClass::Huge;
    fatal("unknown size class '%s'", name.c_str());
}

iq::IqKind
parseIqKind(const std::string &name)
{
    if (name == "random")
        return iq::IqKind::Random;
    if (name == "shifting")
        return iq::IqKind::Shifting;
    if (name == "circular")
        return iq::IqKind::Circular;
    fatal("unknown IQ kind '%s'", name.c_str());
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/**
 * Run one suite workload with the lockstep checker and structural
 * auditor; on success fills @p line with the PASS report row, on
 * SimError fills the FAIL row plus @p error. Shared by the thread- and
 * process-backed verifiers so both report identically.
 */
void
lockstepOne(const std::string &name, const cpu::CoreParams &params,
            uint64_t warmup, uint64_t insts, uint64_t seed,
            std::string &line, std::string &error)
{
    char buf[96];
    try {
        wl::Workload w = wl::makeWorkload(name, seed);
        sim::Simulator simulator(
            params, std::make_unique<emu::Emulator>(w.program));
        simulator.run(warmup, insts);
        const cpu::PipelineStats &s = simulator.pipeline().stats();
        std::snprintf(buf, sizeof(buf), "%-18s %-6s %12llu %12llu",
                      name.c_str(), "PASS",
                      (unsigned long long)s.checkerCommits,
                      (unsigned long long)s.auditsRun);
        error.clear();
    } catch (const SimError &e) {
        std::snprintf(buf, sizeof(buf), "%-18s %-6s", name.c_str(),
                      "FAIL");
        error = std::string(SimError::kindName(e.kind())) +
                " error in " + name + ":\n" + e.what();
    }
    line = buf;
}

/** Print the per-workload report rows and verdict; @return failures. */
int
reportLockstep(const std::vector<std::string> &lines,
               const std::vector<std::string> &errors, unsigned workers,
               const char *workerNoun)
{
    std::printf("%-18s %-6s %12s %12s\n", "workload", "result",
                "checked", "audits");
    int failures = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        std::printf("%s\n", lines[i].c_str());
        if (!errors[i].empty()) {
            ++failures;
            std::fprintf(stderr, "%s\n", errors[i].c_str());
        }
    }
    std::printf("lockstep verification: %s (%d failing workload%s, "
                "%u %s)\n",
                failures ? "FAIL" : "PASS", failures,
                failures == 1 ? "" : "s", workers, workerNoun);
    return failures;
}

/**
 * Run every suite workload with the lockstep checker and the structural
 * auditor set to throw, spread across @p jobs worker threads. Each run
 * is independent (own emulator, pipeline, and RNG), so the report lines
 * are collected per workload and printed in suite order afterwards.
 * @return the number of failing workloads.
 */
int
runLockstep(cpu::CoreParams params, uint64_t warmup, uint64_t insts,
            uint64_t seed, unsigned jobs, progress::Meter *meter)
{
    params.checkPolicy = CheckPolicy::Throw;
    params.auditPolicy = CheckPolicy::Throw;

    const std::vector<std::string> names = wl::suiteNames();
    std::vector<std::string> lines(names.size());
    std::vector<std::string> errors(names.size());

    if (meter) {
        progress::setCallbackSink(
            [meter](const progress::Sample &s) { meter->update(s); },
            250);
    }
    sim::RunPool pool(jobs);
    sim::parallelFor(pool, names.size(), [&](size_t i) {
        if (meter)
            progress::beginTask(i, names[i], warmup + insts);
        lockstepOne(names[i], params, warmup, insts, seed, lines[i],
                    errors[i]);
        if (meter) {
            progress::endTask();
            meter->runFinished(i, errors[i].empty());
        }
    });
    pool.wait();
    if (meter)
        progress::clearSink();
    return reportLockstep(lines, errors, pool.threads(), "jobs");
}

/**
 * Process-isolated variant of runLockstep: every workload verifies in a
 * forked worker, so a segfault or hang in one workload is retried and
 * at worst reported FAIL instead of killing the verifier. The worker
 * ships "P<row>" or "F<row>\n<error>" over the CRC-checked pipe; rows
 * print in suite order either way.
 */
int
runLockstepProcs(cpu::CoreParams params, uint64_t warmup, uint64_t insts,
                 uint64_t seed, unsigned procs, progress::Meter *meter)
{
    params.checkPolicy = CheckPolicy::Throw;
    params.auditPolicy = CheckPolicy::Throw;

    const std::vector<std::string> names = wl::suiteNames();
    std::vector<std::string> lines(names.size());
    std::vector<std::string> errors(names.size());

    sim::ProcPool::Config config =
        sim::ProcPool::configFromEnv(sim::ProcPool::Config());
    config.procs = procs;
    if (meter) {
        config.progressFrames = true;
        if (config.staleSeconds == 0.0)
            config.staleSeconds = 30.0;
        config.onProgress = [meter](const progress::Sample &s) {
            meter->update(s);
        };
    }
    sim::ProcPool pool(config);
    std::vector<sim::ProcResult> results = pool.run(
        names.size(),
        [&](size_t i, unsigned) {
            if (meter)
                progress::beginTask(i, names[i], warmup + insts);
            std::string line, error;
            lockstepOne(names[i], params, warmup, insts, seed, line,
                        error);
            if (meter)
                progress::endTask();
            return (error.empty() ? "P" : "F") + line +
                   (error.empty() ? "" : "\n" + error);
        },
        [&](size_t i, const sim::ProcResult &r) {
            if (!meter)
                return;
            meter->setFarmTotals(pool.stats().retries,
                                 pool.stats().timeouts,
                                 pool.stats().staleKills);
            meter->runFinished(i, r.ok);
        });

    for (size_t i = 0; i < names.size(); ++i) {
        const sim::ProcResult &r = results[i];
        if (!r.ok || r.payload.empty()) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%-18s %-6s",
                          names[i].c_str(), "FAIL");
            lines[i] = buf;
            errors[i] = "proc error in " + names[i] + ":\n" +
                        (r.ok ? "empty result payload" : r.error);
            continue;
        }
        size_t newline = r.payload.find('\n');
        lines[i] = r.payload.substr(1, newline == std::string::npos
                                           ? std::string::npos
                                           : newline - 1);
        if (r.payload[0] == 'F') {
            errors[i] = newline == std::string::npos
                            ? "worker reported failure without detail"
                            : r.payload.substr(newline + 1);
        }
    }
    return reportLockstep(lines, errors, pool.procs(), "procs");
}

} // namespace

int
run(int argc, char **argv)
{
    std::string workload = "sjeng_like";
    sim::Machine machine = sim::Machine::Pubs;
    cpu::SizeClass size = cpu::SizeClass::Medium;
    uint64_t insts = 1000000;
    uint64_t warmup = 200000;

    cpu::CoreParams overrides; // collected then applied
    bool setPriorityEntries = false;
    unsigned priorityEntries = 0;
    bool setConfBits = false;
    unsigned confBits = 0;
    bool noModeSwitch = false;
    bool nonStall = false;
    bool distributed = false;
    bool setIqKind = false;
    iq::IqKind iqKind = iq::IqKind::Random;
    uint64_t seed = 1;
    std::string checkArg;
    bool setAuditInterval = false;
    unsigned auditInterval = 0;
    std::string statsJsonPath;
    std::string pipeviewPath;
    bool telemetry = false;
    bool cpiStack = false;
    bool branchProfile = false;
    bool setHeartbeat = false;
    unsigned heartbeat = 0;
    unsigned jobs = 0;  // 0 = hardware concurrency
    unsigned procs = 0; // 0 = in-process threads
    const char *progressEnv = std::getenv("PUBS_PROGRESS");
    bool progressOn = progressEnv && *progressEnv && *progressEnv != '0';
    std::string tracePath;
    std::string reportPath;
    uint64_t skip = 0;
    std::string saveCkptPath;
    std::string restoreCkptPath;
    std::string checkpointDir;
    unsigned sampleWindows = 0;
    uint64_t samplePeriodArg = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(argv[0]);
            return argv[i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--machine") {
            machine = parseMachine(next());
        } else if (arg == "--size") {
            size = parseSize(next());
        } else if (arg == "--insts") {
            insts = std::stoull(next());
        } else if (arg == "--warmup") {
            warmup = std::stoull(next());
        } else if (arg == "--seed") {
            seed = std::stoull(next());
        } else if (arg == "--priority-entries") {
            setPriorityEntries = true;
            priorityEntries = (unsigned)std::stoul(next());
        } else if (arg == "--conf-bits") {
            setConfBits = true;
            confBits = (unsigned)std::stoul(next());
        } else if (arg == "--no-mode-switch") {
            noModeSwitch = true;
        } else if (arg == "--non-stall") {
            nonStall = true;
        } else if (arg == "--distributed-iq") {
            distributed = true;
        } else if (arg == "--iq") {
            setIqKind = true;
            iqKind = parseIqKind(next());
        } else if (arg == "--check") {
            checkArg = next();
        } else if (arg == "--audit-interval") {
            setAuditInterval = true;
            auditInterval = (unsigned)std::stoul(next());
        } else if (arg == "--stats-json") {
            statsJsonPath = next();
            telemetry = true;
        } else if (arg == "--pipeview") {
            pipeviewPath = next();
        } else if (arg == "--telemetry") {
            telemetry = true;
        } else if (arg == "--cpi-stack") {
            cpiStack = true;
        } else if (arg == "--branch-profile") {
            branchProfile = true;
            telemetry = true;
        } else if (arg == "--heartbeat") {
            setHeartbeat = true;
            heartbeat = (unsigned)std::stoul(next());
        } else if (arg == "--jobs") {
            jobs = (unsigned)std::stoul(next());
            if (jobs == 0)
                fatal("--jobs must be at least 1");
        } else if (arg == "--procs") {
            procs = (unsigned)std::stoul(next());
            if (procs == 0)
                fatal("--procs must be at least 1");
        } else if (arg == "--progress") {
            progressOn = true;
        } else if (arg == "--trace-events") {
            tracePath = next();
        } else if (arg == "--report") {
            reportPath = next();
            telemetry = true;
        } else if (arg == "--skip") {
            skip = std::stoull(next());
        } else if (arg == "--save-checkpoint") {
            saveCkptPath = next();
        } else if (arg == "--restore-checkpoint") {
            restoreCkptPath = next();
        } else if (arg == "--checkpoint-dir") {
            checkpointDir = next();
        } else if (arg == "--sample") {
            sampleWindows = (unsigned)std::stoul(next());
            if (sampleWindows == 0)
                fatal("--sample must be at least 1 window");
        } else if (arg == "--sample-period") {
            samplePeriodArg = std::stoull(next());
            if (samplePeriodArg == 0)
                fatal("--sample-period must be positive");
        } else if (arg == "--list") {
            for (const auto &name : wl::suiteNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    cpu::CoreParams params = sim::makeConfig(machine, size);
    params.seed = seed;
    if (setPriorityEntries)
        params.pubs.priorityEntries = priorityEntries;
    if (setConfBits)
        params.pubs.confCounterBits = confBits;
    if (noModeSwitch)
        params.pubs.modeSwitch = false;
    if (nonStall)
        params.pubs.stallPolicy = false;
    if (distributed)
        params.distributedIq = true;
    if (setIqKind)
        params.iqKind = iqKind;
    if (setAuditInterval)
        params.auditInterval = auditInterval;
    if (telemetry)
        params.telemetry = true;
    if (setHeartbeat)
        params.heartbeatInterval = heartbeat;

    if (!tracePath.empty())
        prof::enable();
    auto writeTraceIfAsked = [&]() {
        if (tracePath.empty())
            return;
        prof::writeTrace(tracePath);
        std::printf("trace events written to %s (open in Perfetto)\n",
                    tracePath.c_str());
    };
    auto makeMeter = [&](size_t totalRuns) {
        std::unique_ptr<progress::Meter> meter;
        if (!progressOn)
            return meter;
        progress::Meter::Config mc;
        mc.totalRuns = totalRuns;
        const char *jsonEnv = std::getenv("PUBS_PROGRESS_JSON");
        mc.jsonPath = jsonEnv && *jsonEnv ? jsonEnv : "progress.json";
        meter = std::make_unique<progress::Meter>(mc);
        return meter;
    };

    if (checkArg == "lockstep") {
        auto meter = makeMeter(wl::suiteNames().size());
        int failures =
            procs ? runLockstepProcs(params, warmup, insts, seed, procs,
                                     meter.get())
                  : runLockstep(params, warmup, insts, seed, jobs,
                                meter.get());
        if (meter)
            meter->finish();
        writeTraceIfAsked();
        return failures ? 1 : 0;
    }
    if (!checkArg.empty()) {
        CheckPolicy policy;
        if (!parseCheckPolicy(checkArg, policy)) {
            fatal("unknown check policy '%s' (want off, warn, throw, "
                  "abort, or lockstep)", checkArg.c_str());
        }
        params.checkPolicy = policy;
        params.auditPolicy = policy;
    }

    std::printf("machine: %s (%s)\n%s\n", sim::machineName(machine),
                cpu::sizeClassName(size), params.describe().c_str());

    if (sampleWindows) {
        if (endsWith(workload, ".trc")) {
            fatal("--sample needs a suite workload; trace replay cannot "
                  "be checkpointed");
        }
        wl::Workload w = wl::makeWorkload(workload, seed);
        sim::SamplePlan plan;
        plan.windows = sampleWindows;
        plan.measureInsts = std::max<uint64_t>(1, insts / sampleWindows);
        plan.warmupInsts = warmup / sampleWindows;
        plan.periodInsts = samplePeriodArg
                               ? samplePeriodArg
                               : plan.warmupInsts + plan.measureInsts;
        sim::CheckpointStore store(checkpointDir);
        sim::RunResult result = sim::simulateSampled(
            params, w.program, plan,
            checkpointDir.empty() ? nullptr : &store,
            sim::machineName(machine));
        std::printf("sampled run: %s (%u windows, %llu insts "
                    "fast-forwarded)\n",
                    plan.describe().c_str(), result.windows,
                    (unsigned long long)result.skippedInsts);
        std::printf("ipc: %.4f +/- %.4f (95%% CI)\n", result.ipc,
                    result.ipcCi95);
        std::printf("branch MPKI: %.3f +/- %.3f\n", result.branchMpki,
                    result.branchMpkiCi95);
        std::printf("LLC MPKI: %.3f +/- %.3f\n", result.llcMpki,
                    result.llcMpkiCi95);
        std::printf("host speed: %.2f s, %.1f KIPS\n", result.simSeconds,
                    result.kips());
        if (cpiStack) {
            std::printf("%s",
                        result.pipeline.cpi.format(result.instructions)
                            .c_str());
        }
        if (!checkpointDir.empty()) {
            std::printf("checkpoint cache: %s\n", checkpointDir.c_str());
        }
        if (!statsJsonPath.empty()) {
            StatRegistry registry;
            StatGroup &run = registry.group("run");
            run.addString("workload", workload);
            run.addString("machine", sim::machineName(machine));
            run.addString("size", cpu::sizeClassName(size));
            run.add("instructions", (double)result.instructions);
            run.add("sampled", 1.0);
            run.add("windows", (double)result.windows);
            run.add("skipped_insts", (double)result.skippedInsts);
            run.add("ipc", result.ipc);
            run.add("ipc_ci95", result.ipcCi95,
                    "95% confidence half-width on ipc");
            run.add("branch_mpki", result.branchMpki);
            run.add("branch_mpki_ci95", result.branchMpkiCi95,
                    "95% confidence half-width on branch_mpki");
            run.add("llc_mpki", result.llcMpki);
            run.add("llc_mpki_ci95", result.llcMpkiCi95,
                    "95% confidence half-width on llc_mpki");
            run.add("sim_seconds", result.simSeconds);
            registry.writeJson(statsJsonPath);
            std::printf("stats written to %s\n", statsJsonPath.c_str());
        }
        writeTraceIfAsked();
        return 0;
    }

    std::unique_ptr<trace::InstSource> source;
    isa::Program program;
    if (endsWith(workload, ".trc")) {
        source = std::make_unique<trace::TraceReader>(workload);
    } else {
        wl::Workload w = wl::makeWorkload(workload, seed);
        program = std::move(w.program);
        source = std::make_unique<emu::Emulator>(program);
    }

    sim::Simulator simulator(params, std::move(source));
    if (!restoreCkptPath.empty()) {
        simulator.restoreCheckpointFile(restoreCkptPath);
        std::printf("checkpoint restored from %s (%llu insts "
                    "fast-forwarded)\n",
                    restoreCkptPath.c_str(),
                    (unsigned long long)simulator.fastForwarded());
    } else if (skip) {
        uint64_t consumed = simulator.fastForward(skip);
        if (consumed < skip) {
            fatal("program ended after %llu of %llu skipped instructions",
                  (unsigned long long)consumed, (unsigned long long)skip);
        }
        std::printf("fast-forwarded %llu instructions\n",
                    (unsigned long long)consumed);
    }
    if (!saveCkptPath.empty()) {
        simulator.saveCheckpointFile(saveCkptPath,
                                     sim::machineName(machine));
        std::printf("checkpoint written to %s\n", saveCkptPath.c_str());
        writeTraceIfAsked();
        return 0;
    }
    if (!pipeviewPath.empty()) {
        simulator.pipeline().attachPipeView(
            std::make_unique<trace::PipeViewWriter>(pipeviewPath));
    }
    auto meter = makeMeter(1);
    if (meter) {
        progress::setCallbackSink(
            [&meter](const progress::Sample &s) { meter->update(s); },
            250);
        progress::beginTask(0, workload, warmup + insts);
    }
    sim::RunResult result = simulator.run(warmup, insts);
    if (meter) {
        progress::endTask();
        progress::clearSink();
        meter->runFinished(0, true);
        meter->finish();
    }

    StatGroup group(workload);
    simulator.pipeline().fillStats(group);
    std::printf("%s", group.format().c_str());
    std::printf("host speed: %.2f s, %.1f KIPS\n", result.simSeconds,
                result.kips());

    if (cpiStack) {
        std::printf("%s",
                    result.pipeline.cpi.format(result.instructions)
                        .c_str());
    }
    if (const cpu::CoreTelemetry *t = simulator.pipeline().telemetry())
        std::printf("%s", t->formatBranchProfile().c_str());

    if (!statsJsonPath.empty() || !reportPath.empty()) {
        StatRegistry registry;
        StatGroup &run = registry.group("run");
        run.addString("workload", workload);
        run.addString("machine", sim::machineName(machine));
        run.addString("size", cpu::sizeClassName(size));
        run.add("instructions", (double)result.instructions);
        run.add("warmup_instructions", (double)warmup);
        run.add("seed", (double)seed);
        run.add("sim_seconds", result.simSeconds,
                "host wall-clock of the measurement phase");
        run.add("kips", result.kips(),
                "kilo-instructions committed per host second");
        simulator.pipeline().fillRegistry(registry);
        if (!statsJsonPath.empty()) {
            registry.writeJson(statsJsonPath);
            std::printf("stats written to %s\n", statsJsonPath.c_str());
        }
        if (!reportPath.empty()) {
            bench::ReportBuilder report;
            report.setTitle("pubs_sim_cli: " + workload + " on " +
                            sim::machineName(machine));
            bench::ReportBuilder::Run row;
            row.workload = workload;
            row.machine = sim::machineName(machine);
            row.ok = true;
            row.instructions = result.instructions;
            row.cycles = result.cycles;
            row.ipc = result.ipc;
            row.kips = result.kips();
            row.branchMpki = result.branchMpki;
            row.llcMpki = result.llcMpki;
            row.unconfidentRate = result.unconfidentBranchRate;
            if (cpiStack) {
                row.hasCpi = true;
                row.cpi = result.pipeline.cpi.cycles;
            }
            if (branchProfile) {
                for (const sim::BranchProfileRow &b :
                     result.branchProfile) {
                    bench::ReportBuilder::Run::Branch branch;
                    branch.pc = b.pc;
                    branch.commits = b.commits;
                    branch.mispredicts = b.mispredicts;
                    branch.penaltyCycles = b.penaltyCycles;
                    branch.unconfCorrect = b.unconfCorrect;
                    branch.unconfWrong = b.unconfWrong;
                    branch.sliceInsts = b.sliceInsts;
                    branch.sliceCovered = b.sliceCovered;
                    row.branches.push_back(branch);
                }
            }
            report.addRun(row);
            report.setStatsJson(registry.renderJson());
            std::string error = report.writeHtml(reportPath);
            if (!error.empty())
                warn("cannot write dashboard %s: %s", reportPath.c_str(),
                     error.c_str());
            else
                std::printf("dashboard written to %s\n",
                            reportPath.c_str());
        }
    }
    if (const trace::PipeViewWriter *pv = simulator.pipeline().pipeView()) {
        std::printf("pipeview trace: %s (%llu records; open with Konata)\n",
                    pv->path().c_str(),
                    (unsigned long long)pv->records());
    }
    writeTraceIfAsked();
    return 0;
}

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const SimError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
