/**
 * @file
 * Example: explore the issue-queue design space of Section III-B1 on one
 * branchy workload — random queue, shifting queue, circular queue, age
 * matrix, PUBS, and PUBS+AGE — reporting IPC and the misspeculation
 * penalty each organisation leaves on the table.
 */

#include <cstdio>

#include "iq/delay_model.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace pubs;

    wl::Workload w = wl::makeWorkload("sjeng_like");
    const uint64_t warmup = 100000;
    const uint64_t measure = 400000;

    struct Variant
    {
        const char *name;
        cpu::CoreParams params;
        bool ageClockPenalty;
    };
    std::vector<Variant> variants;

    variants.push_back({"random queue (base)",
                        sim::makeConfig(sim::Machine::Base), false});
    {
        cpu::CoreParams p = sim::makeConfig(sim::Machine::Base);
        p.iqKind = iq::IqKind::Shifting;
        variants.push_back({"shifting queue (21264-style)", p, false});
    }
    {
        cpu::CoreParams p = sim::makeConfig(sim::Machine::Base);
        p.iqKind = iq::IqKind::Circular;
        variants.push_back({"circular queue", p, false});
    }
    variants.push_back({"random + age matrix",
                        sim::makeConfig(sim::Machine::Age), true});
    variants.push_back({"PUBS", sim::makeConfig(sim::Machine::Pubs),
                        false});
    variants.push_back({"PUBS + age matrix",
                        sim::makeConfig(sim::Machine::PubsAge), true});

    iq::DelayModel delay;
    std::printf("workload: %s\n\n", w.name.c_str());
    std::printf("%-28s %8s %10s %12s %12s\n", "organisation", "IPC",
                "perf*", "IQ wait", "misspec");
    std::printf("%s\n", std::string(76, '-').c_str());

    double baseIpc = 0.0;
    for (const auto &variant : variants) {
        sim::RunResult r =
            sim::simulate(variant.params, w.program, warmup, measure);
        if (baseIpc == 0.0)
            baseIpc = r.ipc;
        double perf = delay.performance(r.ipc, variant.ageClockPenalty) /
                      delay.performance(baseIpc, false);
        std::printf("%-28s %8.3f %9.1f%% %9.1f cyc %9.1f cyc\n",
                    variant.name, r.ipc, (perf - 1.0) * 100.0,
                    r.avgIqWait, r.avgMisspecPenalty);
    }
    std::printf("\n*perf folds in the age matrix's +13%% IQ-delay/clock "
                "penalty (Section V-G1)\n");
    return 0;
}
