/**
 * @file
 * Inspect a captured .trc trace file: per-record disassembly and a
 * summary of the instruction mix, branch behaviour, and memory
 * footprint. Traces record operands but not immediates, so immediate
 * fields print as 0. Usage:
 *
 *     trace_dump <file.trc> [maxRecords]
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "isa/isa.hh"
#include "trace/trace.hh"

int
main(int argc, char **argv)
{
    using namespace pubs;

    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <file.trc> [maxRecords]\n",
                     argv[0]);
        return 2;
    }
    uint64_t maxRecords = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                   : 20;

    trace::TraceReader reader(argv[1]);
    std::printf("%s: %" PRIu64 " records\n\n", argv[1],
                reader.recordCount());

    std::map<isa::OpClass, uint64_t> mix;
    uint64_t branches = 0, taken = 0, loads = 0, stores = 0;
    std::set<Addr> lines;
    std::set<Pc> pcs;

    trace::DynInst di;
    uint64_t shown = 0;
    uint64_t total = 0;
    while (reader.next(di)) {
        ++total;
        ++mix[di.cls()];
        pcs.insert(di.pc);
        if (di.isCondBranch()) {
            ++branches;
            taken += di.taken;
        }
        if (di.isLoad())
            ++loads;
        if (di.isStore())
            ++stores;
        if (di.isMem())
            lines.insert(di.effAddr & ~(Addr)63);

        if (shown < maxRecords) {
            isa::Inst staticInst{di.op, di.dst, di.src1, di.src2, 0};
            std::printf("%8" PRIu64 "  %#8llx  %-24s", di.seq,
                        (unsigned long long)di.pc,
                        isa::disassemble(staticInst).c_str());
            if (di.isMem())
                std::printf("  [%#llx]", (unsigned long long)di.effAddr);
            if (di.isCondBranch())
                std::printf("  %s", di.taken ? "T" : "N");
            std::printf("\n");
            ++shown;
        }
    }
    if (total > shown)
        std::printf("  ... %" PRIu64 " more records\n", total - shown);

    std::printf("\ninstruction mix:\n");
    for (const auto &[cls, count] : mix) {
        std::printf("  %-8s %10" PRIu64 "  (%.1f%%)\n",
                    isa::opClassName(cls), count,
                    100.0 * (double)count / (double)total);
    }
    std::printf("\nstatic PCs        : %zu\n", pcs.size());
    std::printf("cond branches     : %" PRIu64 " (%.1f%% taken)\n",
                branches,
                branches ? 100.0 * (double)taken / (double)branches : 0.0);
    std::printf("loads / stores    : %" PRIu64 " / %" PRIu64 "\n", loads,
                stores);
    std::printf("touched 64B lines : %zu (%.1f KB)\n", lines.size(),
                (double)lines.size() * 64.0 / 1024.0);
    return 0;
}
