# Empty dependencies file for pubs_tests.
# This may be replaced when dependencies are built.
