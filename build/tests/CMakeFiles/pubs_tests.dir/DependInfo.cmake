
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bench_util.cc" "tests/CMakeFiles/pubs_tests.dir/test_bench_util.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_bench_util.cc.o.d"
  "/root/repo/tests/test_branch.cc" "tests/CMakeFiles/pubs_tests.dir/test_branch.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_branch.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/pubs_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_cpu_structs.cc" "tests/CMakeFiles/pubs_tests.dir/test_cpu_structs.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_cpu_structs.cc.o.d"
  "/root/repo/tests/test_emulator.cc" "tests/CMakeFiles/pubs_tests.dir/test_emulator.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_emulator.cc.o.d"
  "/root/repo/tests/test_iq.cc" "tests/CMakeFiles/pubs_tests.dir/test_iq.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_iq.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/pubs_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/pubs_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_mode_switch.cc" "tests/CMakeFiles/pubs_tests.dir/test_mode_switch.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_mode_switch.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/pubs_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/pubs_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_pubs_tables.cc" "tests/CMakeFiles/pubs_tests.dir/test_pubs_tables.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_pubs_tables.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/pubs_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_slice_unit.cc" "tests/CMakeFiles/pubs_tests.dir/test_slice_unit.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_slice_unit.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/pubs_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/pubs_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/pubs_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/pubs_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pubs_core.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
