file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_correlation.dir/bench_fig9_correlation.cc.o"
  "CMakeFiles/bench_fig9_correlation.dir/bench_fig9_correlation.cc.o.d"
  "bench_fig9_correlation"
  "bench_fig9_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
