# Empty dependencies file for bench_fig9_correlation.
# This may be replaced when dependencies are built.
