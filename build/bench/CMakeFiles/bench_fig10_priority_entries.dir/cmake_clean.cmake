file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_priority_entries.dir/bench_fig10_priority_entries.cc.o"
  "CMakeFiles/bench_fig10_priority_entries.dir/bench_fig10_priority_entries.cc.o.d"
  "bench_fig10_priority_entries"
  "bench_fig10_priority_entries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_priority_entries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
