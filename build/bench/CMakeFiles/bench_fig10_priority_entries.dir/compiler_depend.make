# Empty compiler generated dependencies file for bench_fig10_priority_entries.
# This may be replaced when dependencies are built.
