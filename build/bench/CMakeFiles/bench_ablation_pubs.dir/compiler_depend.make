# Empty compiler generated dependencies file for bench_ablation_pubs.
# This may be replaced when dependencies are built.
