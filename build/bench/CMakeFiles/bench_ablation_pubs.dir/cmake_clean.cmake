file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pubs.dir/bench_ablation_pubs.cc.o"
  "CMakeFiles/bench_ablation_pubs.dir/bench_ablation_pubs.cc.o.d"
  "bench_ablation_pubs"
  "bench_ablation_pubs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pubs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
