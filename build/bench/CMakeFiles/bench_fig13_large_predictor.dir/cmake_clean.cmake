file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_large_predictor.dir/bench_fig13_large_predictor.cc.o"
  "CMakeFiles/bench_fig13_large_predictor.dir/bench_fig13_large_predictor.cc.o.d"
  "bench_fig13_large_predictor"
  "bench_fig13_large_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_large_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
