# Empty dependencies file for bench_fig13_large_predictor.
# This may be replaced when dependencies are built.
