# Empty compiler generated dependencies file for bench_fig12_mode_switch.
# This may be replaced when dependencies are built.
