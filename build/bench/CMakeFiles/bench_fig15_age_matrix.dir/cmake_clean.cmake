file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_age_matrix.dir/bench_fig15_age_matrix.cc.o"
  "CMakeFiles/bench_fig15_age_matrix.dir/bench_fig15_age_matrix.cc.o.d"
  "bench_fig15_age_matrix"
  "bench_fig15_age_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_age_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
