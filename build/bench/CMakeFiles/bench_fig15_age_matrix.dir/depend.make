# Empty dependencies file for bench_fig15_age_matrix.
# This may be replaced when dependencies are built.
