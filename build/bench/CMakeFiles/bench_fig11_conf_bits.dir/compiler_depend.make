# Empty compiler generated dependencies file for bench_fig11_conf_bits.
# This may be replaced when dependencies are built.
