file(REMOVE_RECURSE
  "libpubs_core.a"
)
