# Empty dependencies file for pubs_core.
# This may be replaced when dependencies are built.
