
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/bimode.cc" "src/CMakeFiles/pubs_core.dir/branch/bimode.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/bimode.cc.o.d"
  "/root/repo/src/branch/btb.cc" "src/CMakeFiles/pubs_core.dir/branch/btb.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/btb.cc.o.d"
  "/root/repo/src/branch/confidence.cc" "src/CMakeFiles/pubs_core.dir/branch/confidence.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/confidence.cc.o.d"
  "/root/repo/src/branch/gshare.cc" "src/CMakeFiles/pubs_core.dir/branch/gshare.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/gshare.cc.o.d"
  "/root/repo/src/branch/perceptron.cc" "src/CMakeFiles/pubs_core.dir/branch/perceptron.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/perceptron.cc.o.d"
  "/root/repo/src/branch/predictor.cc" "src/CMakeFiles/pubs_core.dir/branch/predictor.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/predictor.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/CMakeFiles/pubs_core.dir/branch/ras.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/ras.cc.o.d"
  "/root/repo/src/branch/tournament.cc" "src/CMakeFiles/pubs_core.dir/branch/tournament.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/branch/tournament.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/pubs_core.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/pubs_core.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/common/stats.cc.o.d"
  "/root/repo/src/cpu/fu_pool.cc" "src/CMakeFiles/pubs_core.dir/cpu/fu_pool.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/cpu/fu_pool.cc.o.d"
  "/root/repo/src/cpu/lsq.cc" "src/CMakeFiles/pubs_core.dir/cpu/lsq.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/cpu/lsq.cc.o.d"
  "/root/repo/src/cpu/params.cc" "src/CMakeFiles/pubs_core.dir/cpu/params.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/cpu/params.cc.o.d"
  "/root/repo/src/cpu/pipeline.cc" "src/CMakeFiles/pubs_core.dir/cpu/pipeline.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/cpu/pipeline.cc.o.d"
  "/root/repo/src/cpu/rename.cc" "src/CMakeFiles/pubs_core.dir/cpu/rename.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/cpu/rename.cc.o.d"
  "/root/repo/src/cpu/rob.cc" "src/CMakeFiles/pubs_core.dir/cpu/rob.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/cpu/rob.cc.o.d"
  "/root/repo/src/emu/emulator.cc" "src/CMakeFiles/pubs_core.dir/emu/emulator.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/emu/emulator.cc.o.d"
  "/root/repo/src/iq/age_matrix.cc" "src/CMakeFiles/pubs_core.dir/iq/age_matrix.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/iq/age_matrix.cc.o.d"
  "/root/repo/src/iq/circular_queue.cc" "src/CMakeFiles/pubs_core.dir/iq/circular_queue.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/iq/circular_queue.cc.o.d"
  "/root/repo/src/iq/delay_model.cc" "src/CMakeFiles/pubs_core.dir/iq/delay_model.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/iq/delay_model.cc.o.d"
  "/root/repo/src/iq/free_list.cc" "src/CMakeFiles/pubs_core.dir/iq/free_list.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/iq/free_list.cc.o.d"
  "/root/repo/src/iq/random_queue.cc" "src/CMakeFiles/pubs_core.dir/iq/random_queue.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/iq/random_queue.cc.o.d"
  "/root/repo/src/iq/shifting_queue.cc" "src/CMakeFiles/pubs_core.dir/iq/shifting_queue.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/iq/shifting_queue.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/pubs_core.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/CMakeFiles/pubs_core.dir/isa/builder.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/isa/builder.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/pubs_core.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/isa/isa.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/pubs_core.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/isa/program.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/pubs_core.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/CMakeFiles/pubs_core.dir/mem/memory_system.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/mem/memory_system.cc.o.d"
  "/root/repo/src/mem/stream_prefetcher.cc" "src/CMakeFiles/pubs_core.dir/mem/stream_prefetcher.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/mem/stream_prefetcher.cc.o.d"
  "/root/repo/src/pubs/brslice_tab.cc" "src/CMakeFiles/pubs_core.dir/pubs/brslice_tab.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/pubs/brslice_tab.cc.o.d"
  "/root/repo/src/pubs/conf_tab.cc" "src/CMakeFiles/pubs_core.dir/pubs/conf_tab.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/pubs/conf_tab.cc.o.d"
  "/root/repo/src/pubs/cost_model.cc" "src/CMakeFiles/pubs_core.dir/pubs/cost_model.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/pubs/cost_model.cc.o.d"
  "/root/repo/src/pubs/def_tab.cc" "src/CMakeFiles/pubs_core.dir/pubs/def_tab.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/pubs/def_tab.cc.o.d"
  "/root/repo/src/pubs/mode_switch.cc" "src/CMakeFiles/pubs_core.dir/pubs/mode_switch.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/pubs/mode_switch.cc.o.d"
  "/root/repo/src/pubs/slice_unit.cc" "src/CMakeFiles/pubs_core.dir/pubs/slice_unit.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/pubs/slice_unit.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/pubs_core.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/pubs_core.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/sim/simulator.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/pubs_core.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/trace/trace.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/CMakeFiles/pubs_core.dir/workloads/kernels.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/workloads/kernels.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/pubs_core.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/pubs_core.dir/workloads/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
