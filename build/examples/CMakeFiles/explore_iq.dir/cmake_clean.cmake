file(REMOVE_RECURSE
  "CMakeFiles/explore_iq.dir/explore_iq.cc.o"
  "CMakeFiles/explore_iq.dir/explore_iq.cc.o.d"
  "explore_iq"
  "explore_iq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_iq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
