# Empty dependencies file for explore_iq.
# This may be replaced when dependencies are built.
