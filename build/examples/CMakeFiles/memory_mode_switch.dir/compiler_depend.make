# Empty compiler generated dependencies file for memory_mode_switch.
# This may be replaced when dependencies are built.
