file(REMOVE_RECURSE
  "CMakeFiles/memory_mode_switch.dir/memory_mode_switch.cc.o"
  "CMakeFiles/memory_mode_switch.dir/memory_mode_switch.cc.o.d"
  "memory_mode_switch"
  "memory_mode_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_mode_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
