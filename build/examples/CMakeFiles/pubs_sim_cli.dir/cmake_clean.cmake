file(REMOVE_RECURSE
  "CMakeFiles/pubs_sim_cli.dir/pubs_sim_cli.cc.o"
  "CMakeFiles/pubs_sim_cli.dir/pubs_sim_cli.cc.o.d"
  "pubs_sim_cli"
  "pubs_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubs_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
