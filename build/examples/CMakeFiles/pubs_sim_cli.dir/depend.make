# Empty dependencies file for pubs_sim_cli.
# This may be replaced when dependencies are built.
